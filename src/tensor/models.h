#ifndef HATEN2_TENSOR_MODELS_H_
#define HATEN2_TENSOR_MODELS_H_

#include <vector>

#include "tensor/dense_matrix.h"
#include "tensor/dense_tensor.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief Kruskal (PARAFAC/CP) model: X ≈ Σ_r λ_r a_r⁽¹⁾ ∘ ... ∘ a_r⁽ᴺ⁾ with
/// unit-norm factor columns and the norms folded into λ.
struct KruskalModel {
  std::vector<double> lambda;        ///< length R, non-negative
  std::vector<DenseMatrix> factors;  ///< N matrices, I_m x R

  /// Fit 1 - ||X - model|| / ||X|| at convergence (1 = exact).
  double fit = 0.0;
  int iterations = 0;
  std::vector<double> fit_history;  ///< fit after each ALS iteration

  int64_t rank() const {
    return factors.empty() ? 0 : factors[0].cols();
  }

  std::vector<const DenseMatrix*> FactorPtrs() const {
    std::vector<const DenseMatrix*> out;
    out.reserve(factors.size());
    for (const DenseMatrix& f : factors) out.push_back(&f);
    return out;
  }
};

/// \brief Tucker model: X ≈ G ×₁ A⁽¹⁾ ... ×ₙ A⁽ᴺ⁾ with orthonormal factor
/// columns.
struct TuckerModel {
  DenseTensor core;                  ///< J_1 x ... x J_N
  std::vector<DenseMatrix> factors;  ///< N matrices, I_m x J_m

  double fit = 0.0;
  int iterations = 0;
  /// ||G|| after each iteration; Tucker-ALS stops when it ceases to increase
  /// (Algorithm 2 line 10).
  std::vector<double> core_norm_history;

  std::vector<const DenseMatrix*> FactorPtrs() const {
    std::vector<const DenseMatrix*> out;
    out.reserve(factors.size());
    for (const DenseMatrix& f : factors) out.push_back(&f);
    return out;
  }
};

/// Fit of a Kruskal model against x:
/// 1 - sqrt(||X||² - 2<X, M> + ||M||²) / ||X||, computed in O(nnz·R + N·R²)
/// without materializing the reconstruction.
Result<double> KruskalFit(const SparseTensor& x, const KruskalModel& model);

/// Fit of a Tucker model with orthonormal factors:
/// ||X - M||² = ||X||² - ||G||², so fit = 1 - sqrt(||X||² - ||G||²) / ||X||.
Result<double> TuckerFit(const SparseTensor& x, const TuckerModel& model);

}  // namespace haten2

#endif  // HATEN2_TENSOR_MODELS_H_
