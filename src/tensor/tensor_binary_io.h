#ifndef HATEN2_TENSOR_TENSOR_BINARY_IO_H_
#define HATEN2_TENSOR_TENSOR_BINARY_IO_H_

#include <string>

#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// Compact binary serialization of sparse tensors, for datasets where text
/// parsing dominates load time (a 100M-nonzero tensor is ~3 GB of text but
/// ~1.6 GB binary and loads an order of magnitude faster).
///
/// Layout (little-endian, fixed-width):
///   8 bytes   magic "HATEN2T\0"
///   4 bytes   format version (currently 1)
///   4 bytes   order N
///   N x 8     mode sizes
///   8 bytes   nnz
///   nnz x (N x 8 + 8)   entries: N int64 indices then a double value
///   8 bytes   XOR-fold checksum of the entry bytes
///
/// Readers validate magic, version, bounds and the checksum, so truncated
/// or corrupted files fail loudly instead of producing garbage tensors.

Status WriteTensorBinary(const SparseTensor& tensor, const std::string& path);
Result<SparseTensor> ReadTensorBinary(const std::string& path);

/// Reads `path` in either format: binary when the magic matches, text
/// otherwise (the CLI uses this so users never specify the format).
Result<SparseTensor> ReadTensorAuto(const std::string& path);

}  // namespace haten2

#endif  // HATEN2_TENSOR_TENSOR_BINARY_IO_H_
