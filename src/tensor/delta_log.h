#ifndef HATEN2_TENSOR_DELTA_LOG_H_
#define HATEN2_TENSOR_DELTA_LOG_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "tensor/sparse_tensor.h"
#include "util/result.h"
#include "util/status.h"

namespace haten2 {

/// \brief Append-only triple log with epoch sealing — the CDC-style ingest
/// buffer for growing tensors.
///
/// Writers append (coordinates, value) triples into an open buffer;
/// SealEpoch() canonicalizes the buffer into one immutable per-epoch
/// SparseTensor delta. A delta is *additive*: merging it into a base tensor
/// appends its entries and re-canonicalizes, so duplicates sum and exact
/// cancellations drop. Deletions are therefore expressed by appending the
/// negation of the current value, and updates by appending the difference —
/// the same convention the incremental ALS path's dirty-slice invalidation
/// assumes (every coordinate a delta names is by definition dirty).
///
/// Coordinates are bounds-checked against the dims the log was created
/// with: the log cannot express a tensor that grows a mode, only one that
/// fills in declared space. That keeps the factor-matrix shapes of a
/// warm-started refit fixed; mode growth needs a fresh decomposition.
class DeltaLog {
 public:
  DeltaLog() = default;

  /// Creates an empty log for tensors of the given shape. Every dim must be
  /// positive and the order must be >= 1.
  static Result<DeltaLog> Create(std::vector<int64_t> dims);

  int order() const { return static_cast<int>(dims_.size()); }
  const std::vector<int64_t>& dims() const { return dims_; }

  /// Appends a triple to the open (unsealed) buffer. Bounds-checked against
  /// dims(); returns InvalidArgument on a coordinate outside them.
  Status Append(const int64_t* idx, int idx_len, double value);
  Status Append(std::initializer_list<int64_t> idx, double value);

  /// Number of raw appends sitting in the open buffer (before duplicate
  /// merging — sealing may produce fewer stored entries).
  int64_t open_appends() const { return open_.nnz(); }

  /// Seals the open buffer into the next epoch delta and starts a fresh
  /// buffer. Returns the index of the sealed epoch. Refuses to seal when
  /// nothing was appended (an empty epoch carries no information); a buffer
  /// whose entries all cancel seals into an empty delta, which is fine.
  Result<int64_t> SealEpoch();

  int64_t num_epochs() const { return static_cast<int64_t>(epochs_.size()); }
  const SparseTensor& epoch(int64_t i) const {
    return epochs_[static_cast<size_t>(i)];
  }

  /// Total stored nonzeros across all sealed epochs.
  int64_t sealed_nnz() const;

  /// Merges sealed epochs [first_epoch, num_epochs()) into `base` additively
  /// and returns the canonical result; `base` must share dims(). With
  /// first_epoch == 0 this is the log's full merged view.
  Result<SparseTensor> MergedView(const SparseTensor& base,
                                  int64_t first_epoch = 0) const;

 private:
  explicit DeltaLog(std::vector<int64_t> dims);

  // The binary writer streams the unsealed tail; the reader reconstructs
  // sealed epochs (including ones whose entries all cancelled, which
  // SealEpoch would refuse to create from an empty buffer) and that tail
  // directly.
  friend Status WriteDeltaLogBinary(const DeltaLog& log,
                                    const std::string& path);
  friend Result<DeltaLog> ReadDeltaLogBinary(const std::string& path);

  std::vector<int64_t> dims_;
  std::vector<SparseTensor> epochs_;
  SparseTensor open_;
};

/// Merges one additive delta into `base` in place: appends every delta entry
/// and re-canonicalizes. Dims must match exactly.
Status MergeDelta(SparseTensor* base, const SparseTensor& delta);

/// Re-plays a triples tensor into a DeltaLog with the given target shape,
/// sealing an epoch every `epoch_nnz` appends (<= 0 means one epoch holding
/// everything). Entries are consumed in storage order, so a text/binary
/// ingest file becomes a deterministic epoch sequence. Coordinates must fit
/// `dims` (which may exceed the triples tensor's own declared shape).
Result<DeltaLog> DeltaLogFromTensor(const SparseTensor& triples,
                                    const std::vector<int64_t>& dims,
                                    int64_t epoch_nnz);

/// Binary round-trip of a whole log (sealed epochs + open buffer), same
/// conventions as tensor_binary_io: magic "HATEN2D\0", fixed-width
/// little-endian fields, XOR-fold checksum over the entry bytes, loud
/// failures on truncation or corruption.
Status WriteDeltaLogBinary(const DeltaLog& log, const std::string& path);
Result<DeltaLog> ReadDeltaLogBinary(const std::string& path);

}  // namespace haten2

#endif  // HATEN2_TENSOR_DELTA_LOG_H_
