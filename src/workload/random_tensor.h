#ifndef HATEN2_WORKLOAD_RANDOM_TENSOR_H_
#define HATEN2_WORKLOAD_RANDOM_TENSOR_H_

#include <cstdint>
#include <vector>

#include "tensor/models.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief Generator for the paper's "Random" dataset family (Table V):
/// synthetic tensors of size I x I x I (or arbitrary dims) with a target
/// number of nonzeros at uniformly random coordinates.
struct RandomTensorSpec {
  std::vector<int64_t> dims;
  /// Number of coordinate draws; the realized nnz can be slightly lower
  /// after duplicate coordinates merge.
  int64_t nnz = 0;
  /// Values are Uniform(min_value, max_value).
  double min_value = 0.5;
  double max_value = 1.5;
  uint64_t seed = 42;
};

Result<SparseTensor> GenerateRandomTensor(const RandomTensorSpec& spec);

/// Convenience: cubic I x I x I tensor with nnz = density · I³ (the density
/// sweep of Figures 1(b) and 7(b)).
Result<SparseTensor> GenerateRandomCubicTensor(int64_t dim, double density,
                                               uint64_t seed);

/// \brief A tensor with known latent structure, for recovery tests: a
/// rank-`rank` Kruskal model sampled sparsely, plus optional noise entries.
struct LowRankTensorSpec {
  std::vector<int64_t> dims;
  int64_t rank = 3;
  /// Size of each component's index block per mode.
  int64_t block_size = 8;
  /// Nonzeros sampled inside each component's block.
  int64_t nnz_per_component = 200;
  /// Uniform random entries added outside the structure.
  int64_t noise_nnz = 0;
  double noise_value = 0.05;
  uint64_t seed = 42;
};

struct PlantedTensor {
  SparseTensor tensor;
  /// memberships[r][m] = sorted indices of component r's block in mode m.
  std::vector<std::vector<std::vector<int64_t>>> memberships;
};

Result<PlantedTensor> GenerateLowRankTensor(const LowRankTensorSpec& spec);

}  // namespace haten2

#endif  // HATEN2_WORKLOAD_RANDOM_TENSOR_H_
