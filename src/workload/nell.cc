#include "workload/nell.h"

#include <algorithm>
#include <unordered_set>

#include "util/random.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

const char* const kCategoryNames[] = {"city",    "country", "athlete",
                                      "sport",   "company", "product",
                                      "person",  "band",    "instrument",
                                      "animal"};

std::string CategoryName(int category) {
  constexpr int kNamed =
      static_cast<int>(sizeof(kCategoryNames) / sizeof(kCategoryNames[0]));
  if (category < kNamed) return kCategoryNames[category];
  return StrFormat("category%d", category);
}

}  // namespace

std::string NellData::EntityName(int64_t entity) const {
  int category = CategoryOf(entity);
  return StrFormat("%s:%lld", CategoryName(category).c_str(),
                   (long long)(entity - CategoryBegin(category)));
}

std::string NellData::ContextName(int64_t context) const {
  const std::string& tag = context_tags[static_cast<size_t>(context)];
  return tag.empty() ? StrFormat("ctx%lld", (long long)context) : tag;
}

Result<NellData> GenerateNell(const NellSpec& spec) {
  if (spec.num_categories < 2) {
    return Status::InvalidArgument("need at least two categories");
  }
  if (spec.entities_per_category <= 0 || spec.num_contexts <= 0) {
    return Status::InvalidArgument(
        "entities_per_category and num_contexts must be positive");
  }
  if (static_cast<int64_t>(spec.num_patterns) * spec.contexts_per_pattern >
      spec.num_contexts) {
    return Status::InvalidArgument(
        "not enough contexts for disjoint pattern groups");
  }

  const int64_t num_entities =
      static_cast<int64_t>(spec.num_categories) * spec.entities_per_category;
  NellData data;
  data.entities_per_category = spec.entities_per_category;
  HATEN2_ASSIGN_OR_RETURN(
      data.tensor,
      SparseTensor::Create({num_entities, num_entities, spec.num_contexts}));
  data.context_tags.assign(static_cast<size_t>(spec.num_contexts), "");

  Rng rng(spec.seed);

  // Assign each pattern a (subject, object) category pair and a disjoint
  // context group.
  std::vector<int64_t> context_pool(static_cast<size_t>(spec.num_contexts));
  for (size_t i = 0; i < context_pool.size(); ++i) {
    context_pool[i] = static_cast<int64_t>(i);
  }
  rng.Shuffle(&context_pool);
  size_t next_context = 0;
  std::unordered_set<int64_t> used_pairs;
  for (int p = 0; p < spec.num_patterns; ++p) {
    NellData::Pattern pattern;
    // Distinct (subject, object) category pairs with subject != object.
    do {
      pattern.subject_category = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(spec.num_categories)));
      pattern.object_category = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(spec.num_categories)));
    } while (pattern.subject_category == pattern.object_category ||
             used_pairs.count(pattern.subject_category * 1000 +
                              pattern.object_category) > 0);
    used_pairs.insert(pattern.subject_category * 1000 +
                      pattern.object_category);
    for (int64_t c = 0; c < spec.contexts_per_pattern; ++c) {
      int64_t ctx = context_pool[next_context++];
      pattern.contexts.push_back(ctx);
      data.context_tags[static_cast<size_t>(ctx)] = StrFormat(
          "p%d:%s-%s:ctx%lld", p,
          CategoryName(pattern.subject_category).c_str(),
          CategoryName(pattern.object_category).c_str(), (long long)ctx);
    }
    std::sort(pattern.contexts.begin(), pattern.contexts.end());

    std::vector<int64_t> idx(3);
    for (int64_t f = 0; f < spec.facts_per_pattern; ++f) {
      idx[0] = data.CategoryBegin(pattern.subject_category) +
               static_cast<int64_t>(rng.UniformInt(
                   static_cast<uint64_t>(spec.entities_per_category)));
      idx[1] = data.CategoryBegin(pattern.object_category) +
               static_cast<int64_t>(rng.UniformInt(
                   static_cast<uint64_t>(spec.entities_per_category)));
      idx[2] = pattern.contexts[static_cast<size_t>(rng.UniformInt(
          static_cast<uint64_t>(pattern.contexts.size())))];
      data.tensor.AppendUnchecked(idx.data(), 1.0);
    }
    data.patterns.push_back(std::move(pattern));
  }

  // Background noise: uniformly random malformed extractions.
  std::vector<int64_t> idx(3);
  for (int64_t f = 0; f < spec.noise_facts; ++f) {
    idx[0] = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(num_entities)));
    idx[1] = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(num_entities)));
    idx[2] = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(spec.num_contexts)));
    data.tensor.AppendUnchecked(idx.data(), 1.0);
  }
  data.tensor.Canonicalize();
  return data;
}

NellRecovery ScoreNellRecovery(
    const NellData& data, const std::vector<std::vector<int64_t>>& top_np1,
    const std::vector<std::vector<int64_t>>& top_np2,
    const std::vector<std::vector<int64_t>>& top_ctx, double threshold) {
  NellRecovery out;
  out.component_of_pattern.assign(data.patterns.size(), -1);
  if (top_np1.empty()) return out;
  int recovered = 0;
  for (size_t p = 0; p < data.patterns.size(); ++p) {
    const NellData::Pattern& pattern = data.patterns[p];
    std::unordered_set<int64_t> contexts(pattern.contexts.begin(),
                                         pattern.contexts.end());
    for (size_t r = 0; r < top_np1.size(); ++r) {
      auto fraction_in_category = [&](const std::vector<int64_t>& top,
                                      int category) {
        if (top.empty()) return 0.0;
        int64_t hits = 0;
        for (int64_t e : top) {
          if (data.CategoryOf(e) == category) ++hits;
        }
        return static_cast<double>(hits) / static_cast<double>(top.size());
      };
      auto fraction_in_contexts = [&](const std::vector<int64_t>& top) {
        if (top.empty()) return 0.0;
        int64_t hits = 0;
        for (int64_t c : top) hits += contexts.count(c) > 0 ? 1 : 0;
        return static_cast<double>(hits) / static_cast<double>(top.size());
      };
      if (fraction_in_category(top_np1[r], pattern.subject_category) >=
              threshold &&
          fraction_in_category(top_np2[r], pattern.object_category) >=
              threshold &&
          fraction_in_contexts(top_ctx[r]) >= threshold) {
        out.component_of_pattern[p] = static_cast<int>(r);
        ++recovered;
        break;
      }
    }
  }
  out.patterns_recovered =
      data.patterns.empty()
          ? 1.0
          : static_cast<double>(recovered) /
                static_cast<double>(data.patterns.size());
  return out;
}

}  // namespace haten2
