#ifndef HATEN2_WORKLOAD_KNOWLEDGE_BASE_H_
#define HATEN2_WORKLOAD_KNOWLEDGE_BASE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/dense_matrix.h"
#include "tensor/dense_tensor.h"
#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief Synthetic stand-in for the Freebase-music / NELL RDF tensors of
/// the paper's discovery experiments (Tables VI-VIII).
///
/// Facts are (subject, object, relation) triples. Latent *concepts* are
/// planted as dense-ish blocks: a group of subjects connected to a group of
/// objects through a group of relations. When `share_groups` is set,
/// consecutive concepts share their object group (and one relation group is
/// reused), mirroring the overlap the paper highlights as Tucker's
/// specialty in Table VIII ("the object group O1 appears in both of the
/// concepts"). Background noise follows a Zipf popularity law, creating the
/// dominant general terms the paper's preprocessing counteracts.
struct KnowledgeBaseSpec {
  int64_t num_subjects = 1500;
  int64_t num_objects = 1500;
  int64_t num_relations = 60;

  int num_concepts = 4;
  int64_t subjects_per_concept = 30;
  int64_t objects_per_concept = 30;
  int64_t relations_per_concept = 4;
  int64_t facts_per_concept = 1200;

  /// Background facts drawn with Zipf-skewed entity popularity.
  int64_t noise_facts = 800;
  double zipf_exponent = 1.1;

  /// Make consecutive concepts share object groups (Tucker discovery).
  bool share_groups = true;

  uint64_t seed = 42;
};

struct KnowledgeBase {
  /// subject x object x relation; entry value = number of times the triple
  /// was asserted (>= 1).
  SparseTensor tensor;

  struct Concept {
    std::vector<int64_t> subjects;
    std::vector<int64_t> objects;
    std::vector<int64_t> relations;
  };
  std::vector<Concept> concepts;

  /// Human-readable labels ("c0:subject12", "noise:object77", ...) used by
  /// the discovery harness to print Table VI/VIII-style output.
  std::string SubjectName(int64_t i) const;
  std::string ObjectName(int64_t i) const;
  std::string RelationName(int64_t i) const;

  std::vector<std::string> subject_tags;   // per planted subject, else empty
  std::vector<std::string> object_tags;
  std::vector<std::string> relation_tags;
};

Result<KnowledgeBase> GenerateKnowledgeBase(const KnowledgeBaseSpec& spec);

/// The paper's pre-processing (Section IV-C): drops triples whose relation
/// is too scarce (fewer than min_relation_count facts) or too frequent (more
/// than max_relation_fraction of all facts), then reweights every remaining
/// entry to 1 + log(alpha / links(z)) where alpha is the fact count of the
/// most frequent surviving relation and links(z) that of the entry's
/// relation.
struct PreprocessOptions {
  int64_t min_relation_count = 2;
  double max_relation_fraction = 0.3;
  /// Mode holding the relation/predicate (2 for (s, o, r) tensors).
  int relation_mode = 2;
};

Result<SparseTensor> PreprocessKnowledgeTensor(const SparseTensor& tensor,
                                               const PreprocessOptions& opts);

// --- Concept reporting helpers (used by Tables VI-VIII harnesses) ---

/// Normalizes each factor column to sum 1 (the paper's mitigation of
/// dominant terms) and returns the top-k row indices per column, by value.
std::vector<std::vector<int64_t>> TopKPerColumn(const DenseMatrix& factor,
                                                int k);

/// Largest-magnitude core tensor entries, as (multi-index, value) pairs —
/// each one names a (subject-group, object-group, relation-group) concept
/// combination (Table VIII).
struct CoreEntry {
  std::vector<int64_t> index;
  double value;
};
std::vector<CoreEntry> TopCoreEntries(const DenseTensor& core, int k);

/// How well `topk` columns recover `planted` groups: for each planted group,
/// the best-matching column's overlap fraction |top ∩ group| / min(k,
/// |group|); returns the mean over groups (1.0 = every group perfectly
/// recovered by some component).
double RecoveryScore(const std::vector<std::vector<int64_t>>& topk,
                     const std::vector<std::vector<int64_t>>& planted);

}  // namespace haten2

#endif  // HATEN2_WORKLOAD_KNOWLEDGE_BASE_H_
