#ifndef HATEN2_WORKLOAD_NETWORK_LOGS_H_
#define HATEN2_WORKLOAD_NETWORK_LOGS_H_

#include <cstdint>
#include <vector>

#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief Synthetic network-intrusion logs — the paper's motivating example:
/// (source-ip, target-ip, port-number, timestamp) records.
///
/// Normal traffic is generated per *service* (web, dns, mail, ...): a set of
/// client sources talking to a set of servers on one or two service ports,
/// across all timestamps. A port-scan anomaly is planted: one source probing
/// many consecutive ports of one target within a short time window. PARAFAC
/// components then separate the services, and the scan shows up as a
/// component concentrating on a single source/target with broad port
/// support (the anomaly-detection use of [3], [17] cited by the paper).
struct NetworkLogSpec {
  int64_t num_sources = 400;
  int64_t num_targets = 300;
  int64_t num_ports = 120;
  int64_t num_timestamps = 24;

  int num_services = 3;
  int64_t clients_per_service = 40;
  int64_t servers_per_service = 10;
  int64_t flows_per_service = 3000;

  /// Planted scan: `scan_ports` consecutive ports of one target probed by
  /// one source during `scan_window` consecutive timestamps, each probed
  /// `scan_intensity` times (SYN retries make repeated probes realistic).
  int64_t scan_ports = 60;
  int64_t scan_window = 2;
  double scan_intensity = 1.0;

  /// Collapse the timestamp mode for 3-way consumers.
  bool include_time_mode = true;

  uint64_t seed = 42;
};

struct NetworkLogs {
  /// Counts tensor: (source, target, port[, time]).
  SparseTensor tensor;

  struct Service {
    std::vector<int64_t> clients;
    std::vector<int64_t> servers;
    std::vector<int64_t> ports;
  };
  std::vector<Service> services;

  int64_t scanner_source = -1;
  int64_t scan_target = -1;
  std::vector<int64_t> scan_ports;
  std::vector<int64_t> scan_times;
};

Result<NetworkLogs> GenerateNetworkLogs(const NetworkLogSpec& spec);

}  // namespace haten2

#endif  // HATEN2_WORKLOAD_NETWORK_LOGS_H_
