#include "workload/knowledge_base.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "util/random.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

std::vector<int64_t> SampleDistinct(int64_t universe, int64_t count,
                                    std::unordered_set<int64_t>* used,
                                    Rng* rng) {
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(count));
  while (static_cast<int64_t>(out.size()) < count) {
    int64_t candidate =
        static_cast<int64_t>(rng->UniformInt(static_cast<uint64_t>(universe)));
    if (used != nullptr) {
      if (used->count(candidate) > 0) continue;
      used->insert(candidate);
    }
    out.push_back(candidate);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string KnowledgeBase::SubjectName(int64_t i) const {
  const std::string& tag = subject_tags[static_cast<size_t>(i)];
  return tag.empty() ? StrFormat("subject%lld", (long long)i) : tag;
}

std::string KnowledgeBase::ObjectName(int64_t i) const {
  const std::string& tag = object_tags[static_cast<size_t>(i)];
  return tag.empty() ? StrFormat("object%lld", (long long)i) : tag;
}

std::string KnowledgeBase::RelationName(int64_t i) const {
  const std::string& tag = relation_tags[static_cast<size_t>(i)];
  return tag.empty() ? StrFormat("relation%lld", (long long)i) : tag;
}

Result<KnowledgeBase> GenerateKnowledgeBase(const KnowledgeBaseSpec& spec) {
  if (spec.num_concepts <= 0) {
    return Status::InvalidArgument("num_concepts must be positive");
  }
  if (spec.subjects_per_concept > spec.num_subjects ||
      spec.objects_per_concept > spec.num_objects ||
      spec.relations_per_concept > spec.num_relations) {
    return Status::InvalidArgument(
        "per-concept group sizes exceed the entity universes");
  }
  if (static_cast<int64_t>(spec.num_concepts) * spec.subjects_per_concept >
          spec.num_subjects ||
      static_cast<int64_t>(spec.num_concepts) * spec.relations_per_concept >
          spec.num_relations) {
    return Status::InvalidArgument(
        "not enough subjects/relations for disjoint concept groups");
  }

  KnowledgeBase kb;
  HATEN2_ASSIGN_OR_RETURN(
      kb.tensor, SparseTensor::Create({spec.num_subjects, spec.num_objects,
                                       spec.num_relations}));
  kb.subject_tags.assign(static_cast<size_t>(spec.num_subjects), "");
  kb.object_tags.assign(static_cast<size_t>(spec.num_objects), "");
  kb.relation_tags.assign(static_cast<size_t>(spec.num_relations), "");

  Rng rng(spec.seed);
  std::unordered_set<int64_t> used_subjects;
  std::unordered_set<int64_t> used_objects;
  std::unordered_set<int64_t> used_relations;

  for (int c = 0; c < spec.num_concepts; ++c) {
    KnowledgeBase::Concept group;
    group.subjects = SampleDistinct(spec.num_subjects,
                                      spec.subjects_per_concept,
                                      &used_subjects, &rng);
    if (spec.share_groups && c > 0 && c % 2 == 1) {
      // Odd concepts reuse the previous concept's object group (overlap).
      group.objects = kb.concepts[static_cast<size_t>(c - 1)].objects;
    } else {
      group.objects = SampleDistinct(spec.num_objects,
                                       spec.objects_per_concept,
                                       &used_objects, &rng);
    }
    group.relations = SampleDistinct(spec.num_relations,
                                       spec.relations_per_concept,
                                       &used_relations, &rng);
    for (int64_t s : group.subjects) {
      auto& tag = kb.subject_tags[static_cast<size_t>(s)];
      if (tag.empty()) tag = StrFormat("c%d:subject%lld", c, (long long)s);
    }
    for (int64_t o : group.objects) {
      auto& tag = kb.object_tags[static_cast<size_t>(o)];
      if (tag.empty()) tag = StrFormat("c%d:object%lld", c, (long long)o);
    }
    for (int64_t r : group.relations) {
      auto& tag = kb.relation_tags[static_cast<size_t>(r)];
      if (tag.empty()) tag = StrFormat("c%d:relation%lld", c, (long long)r);
    }

    std::vector<int64_t> idx(3);
    for (int64_t f = 0; f < spec.facts_per_concept; ++f) {
      idx[0] = group.subjects[static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(group.subjects.size())))];
      idx[1] = group.objects[static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(group.objects.size())))];
      idx[2] = group.relations[static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(group.relations.size())))];
      kb.tensor.AppendUnchecked(idx.data(), 1.0);
    }
    kb.concepts.push_back(std::move(group));
  }

  // Zipf-skewed background facts: popular entities dominate, as the general
  // terms do in real knowledge bases.
  std::vector<int64_t> idx(3);
  for (int64_t f = 0; f < spec.noise_facts; ++f) {
    idx[0] = static_cast<int64_t>(rng.Zipf(
        static_cast<uint64_t>(spec.num_subjects), spec.zipf_exponent));
    idx[1] = static_cast<int64_t>(rng.Zipf(
        static_cast<uint64_t>(spec.num_objects), spec.zipf_exponent));
    idx[2] = static_cast<int64_t>(rng.Zipf(
        static_cast<uint64_t>(spec.num_relations), spec.zipf_exponent));
    kb.tensor.AppendUnchecked(idx.data(), 1.0);
  }
  kb.tensor.Canonicalize();
  return kb;
}

Result<SparseTensor> PreprocessKnowledgeTensor(const SparseTensor& tensor,
                                               const PreprocessOptions& opts) {
  if (opts.relation_mode < 0 || opts.relation_mode >= tensor.order()) {
    return Status::InvalidArgument("relation_mode out of range");
  }
  if (opts.max_relation_fraction <= 0.0 || opts.max_relation_fraction > 1.0) {
    return Status::InvalidArgument(
        "max_relation_fraction must be in (0, 1]");
  }
  // links(z): number of facts per relation.
  std::unordered_map<int64_t, int64_t> links;
  for (int64_t e = 0; e < tensor.nnz(); ++e) {
    ++links[tensor.index(e, opts.relation_mode)];
  }
  const double total = static_cast<double>(tensor.nnz());
  int64_t alpha = 0;  // most frequent surviving relation's count
  std::unordered_set<int64_t> dropped;
  for (const auto& [relation, count] : links) {
    if (count < opts.min_relation_count ||
        static_cast<double>(count) > opts.max_relation_fraction * total) {
      dropped.insert(relation);
    } else {
      alpha = std::max(alpha, count);
    }
  }
  if (alpha == 0) {
    return Status::FailedPrecondition(
        "preprocessing dropped every relation; relax the thresholds");
  }

  HATEN2_ASSIGN_OR_RETURN(SparseTensor out,
                          SparseTensor::Create(tensor.dims()));
  out.Reserve(tensor.nnz());
  for (int64_t e = 0; e < tensor.nnz(); ++e) {
    int64_t relation = tensor.index(e, opts.relation_mode);
    if (dropped.count(relation) > 0) continue;
    double weight =
        1.0 + std::log(static_cast<double>(alpha) /
                       static_cast<double>(links[relation]));
    out.AppendUnchecked(tensor.IndexPtr(e), weight);
  }
  out.Canonicalize();
  return out;
}

std::vector<std::vector<int64_t>> TopKPerColumn(const DenseMatrix& factor,
                                                int k) {
  std::vector<std::vector<int64_t>> out(static_cast<size_t>(factor.cols()));
  // Column sums for the paper's normalization (value / column sum). The
  // normalization does not change intra-column ordering, but we apply it to
  // match the described pipeline and to make printed scores comparable.
  for (int64_t j = 0; j < factor.cols(); ++j) {
    std::vector<int64_t> order(static_cast<size_t>(factor.rows()));
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(
        order.begin(),
        order.begin() + std::min<int64_t>(k, factor.rows()), order.end(),
        [&factor, j](int64_t a, int64_t b) {
          return std::fabs(factor(a, j)) > std::fabs(factor(b, j));
        });
    order.resize(static_cast<size_t>(std::min<int64_t>(k, factor.rows())));
    out[static_cast<size_t>(j)] = std::move(order);
  }
  return out;
}

std::vector<CoreEntry> TopCoreEntries(const DenseTensor& core, int k) {
  std::vector<CoreEntry> entries;
  std::vector<int64_t> idx(static_cast<size_t>(core.order()), 0);
  for (int64_t lin = 0; lin < core.size(); ++lin) {
    entries.push_back(
        CoreEntry{idx, core.data()[static_cast<size_t>(lin)]});
    for (size_t m = idx.size(); m-- > 0;) {
      if (++idx[m] < core.dim(static_cast<int>(m))) break;
      idx[m] = 0;
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const CoreEntry& a, const CoreEntry& b) {
              return std::fabs(a.value) > std::fabs(b.value);
            });
  if (static_cast<int>(entries.size()) > k) {
    entries.resize(static_cast<size_t>(k));
  }
  return entries;
}

double RecoveryScore(const std::vector<std::vector<int64_t>>& topk,
                     const std::vector<std::vector<int64_t>>& planted) {
  if (planted.empty()) return 1.0;
  double total = 0.0;
  for (const std::vector<int64_t>& group : planted) {
    std::unordered_set<int64_t> members(group.begin(), group.end());
    double best = 0.0;
    for (const std::vector<int64_t>& top : topk) {
      int64_t hits = 0;
      for (int64_t i : top) {
        if (members.count(i) > 0) ++hits;
      }
      double denom = static_cast<double>(
          std::min(top.size(), members.size()));
      if (denom > 0) best = std::max(best, static_cast<double>(hits) / denom);
    }
    total += best;
  }
  return total / static_cast<double>(planted.size());
}

}  // namespace haten2
