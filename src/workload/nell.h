#ifndef HATEN2_WORKLOAD_NELL_H_
#define HATEN2_WORKLOAD_NELL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/sparse_tensor.h"
#include "util/result.h"

namespace haten2 {

/// \brief Synthetic stand-in for the NELL "Read the Web" tensor: facts of
/// the form (noun-phrase-1, noun-phrase-2, context), e.g. ('George
/// Harrison', 'guitars', 'plays').
///
/// Structurally different from the Freebase-style KnowledgeBase generator:
/// here every noun phrase belongs to a *category* (city, country, athlete,
/// sport, ...) and the latent structure is a set of *relational patterns*,
/// each connecting a subject category to an object category through a group
/// of context phrases ("located-in": city x country via {'is in', 'lies
/// in'}). Because a category participates in many patterns (cities are both
/// 'located in' countries and 'home of' teams), factor overlap arises from
/// the schema itself rather than from explicitly shared groups — the kind
/// of structure the paper's NELL supplementary results discuss.
struct NellSpec {
  int num_categories = 6;
  int64_t entities_per_category = 150;
  int64_t num_contexts = 60;

  /// Relational patterns; each picks a (subject-category, object-category)
  /// pair and a disjoint group of contexts.
  int num_patterns = 5;
  int64_t contexts_per_pattern = 5;
  int64_t facts_per_pattern = 2500;

  /// Uniform background facts (malformed extractions, noise).
  int64_t noise_facts = 1000;

  uint64_t seed = 42;
};

struct NellData {
  /// noun-phrase-1 x noun-phrase-2 x context; values are extraction counts.
  SparseTensor tensor;

  struct Pattern {
    int subject_category;
    int object_category;
    std::vector<int64_t> contexts;
  };
  std::vector<Pattern> patterns;

  /// Entity e belongs to category e / entities_per_category.
  int64_t entities_per_category = 0;
  int CategoryOf(int64_t entity) const {
    return static_cast<int>(entity / entities_per_category);
  }
  /// Entity ids of one category, [first, last).
  int64_t CategoryBegin(int category) const {
    return static_cast<int64_t>(category) * entities_per_category;
  }
  int64_t CategoryEnd(int category) const {
    return CategoryBegin(category) + entities_per_category;
  }

  std::string EntityName(int64_t entity) const;
  std::string ContextName(int64_t context) const;

  std::vector<std::string> context_tags;  // per planted context, else empty
};

Result<NellData> GenerateNell(const NellSpec& spec);

/// Scores how well PARAFAC components recover the planted patterns: for
/// each pattern, the best component must concentrate its top-k mode-0
/// loadings in the subject category, top-k mode-1 loadings in the object
/// category, and top contexts in the pattern's context group; returns the
/// fraction of patterns recovered (see the supplementary-NELL harness).
struct NellRecovery {
  double patterns_recovered = 0.0;  // fraction in [0, 1]
  std::vector<int> component_of_pattern;  // -1 when unrecovered
};
NellRecovery ScoreNellRecovery(const NellData& data,
                               const std::vector<std::vector<int64_t>>& top_np1,
                               const std::vector<std::vector<int64_t>>& top_np2,
                               const std::vector<std::vector<int64_t>>& top_ctx,
                               double threshold = 0.6);

}  // namespace haten2

#endif  // HATEN2_WORKLOAD_NELL_H_
