#include "workload/network_logs.h"

#include <algorithm>
#include <unordered_set>

#include "util/random.h"
#include "util/string_util.h"

namespace haten2 {

namespace {

std::vector<int64_t> SampleDistinct(int64_t universe, int64_t count,
                                    Rng* rng) {
  std::unordered_set<int64_t> picked;
  while (static_cast<int64_t>(picked.size()) < count) {
    picked.insert(static_cast<int64_t>(
        rng->UniformInt(static_cast<uint64_t>(universe))));
  }
  std::vector<int64_t> out(picked.begin(), picked.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Result<NetworkLogs> GenerateNetworkLogs(const NetworkLogSpec& spec) {
  if (spec.num_services <= 0) {
    return Status::InvalidArgument("num_services must be positive");
  }
  if (spec.clients_per_service > spec.num_sources ||
      spec.servers_per_service > spec.num_targets) {
    return Status::InvalidArgument(
        "per-service group sizes exceed the address universes");
  }
  if (spec.scan_ports > spec.num_ports ||
      spec.scan_window > spec.num_timestamps) {
    return Status::InvalidArgument("scan exceeds the port/time universes");
  }

  NetworkLogs logs;
  std::vector<int64_t> dims = {spec.num_sources, spec.num_targets,
                               spec.num_ports};
  if (spec.include_time_mode) dims.push_back(spec.num_timestamps);
  HATEN2_ASSIGN_OR_RETURN(logs.tensor, SparseTensor::Create(dims));

  Rng rng(spec.seed);
  const int order = static_cast<int>(dims.size());
  std::vector<int64_t> idx(static_cast<size_t>(order));

  for (int s = 0; s < spec.num_services; ++s) {
    NetworkLogs::Service service;
    service.clients = SampleDistinct(spec.num_sources,
                                     spec.clients_per_service, &rng);
    service.servers = SampleDistinct(spec.num_targets,
                                     spec.servers_per_service, &rng);
    // One or two well-known ports per service.
    int64_t base_port = static_cast<int64_t>(
        rng.UniformInt(static_cast<uint64_t>(spec.num_ports - 1)));
    service.ports = {base_port};
    if (rng.Bernoulli(0.5)) service.ports.push_back(base_port + 1);

    for (int64_t f = 0; f < spec.flows_per_service; ++f) {
      idx[0] = service.clients[static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(service.clients.size())))];
      idx[1] = service.servers[static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(service.servers.size())))];
      idx[2] = service.ports[static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(service.ports.size())))];
      if (spec.include_time_mode) {
        idx[3] = static_cast<int64_t>(
            rng.UniformInt(static_cast<uint64_t>(spec.num_timestamps)));
      }
      logs.tensor.AppendUnchecked(idx.data(), 1.0);
    }
    logs.services.push_back(std::move(service));
  }

  // Planted port scan.
  logs.scanner_source = static_cast<int64_t>(
      rng.UniformInt(static_cast<uint64_t>(spec.num_sources)));
  logs.scan_target = static_cast<int64_t>(
      rng.UniformInt(static_cast<uint64_t>(spec.num_targets)));
  int64_t port_base = static_cast<int64_t>(rng.UniformInt(
      static_cast<uint64_t>(spec.num_ports - spec.scan_ports + 1)));
  int64_t time_base =
      spec.include_time_mode
          ? static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(
                spec.num_timestamps - spec.scan_window + 1)))
          : 0;
  for (int64_t p = 0; p < spec.scan_ports; ++p) {
    logs.scan_ports.push_back(port_base + p);
  }
  for (int64_t t = 0; t < spec.scan_window; ++t) {
    logs.scan_times.push_back(time_base + t);
  }
  for (int64_t p : logs.scan_ports) {
    idx[0] = logs.scanner_source;
    idx[1] = logs.scan_target;
    idx[2] = p;
    if (spec.include_time_mode) {
      for (int64_t t : logs.scan_times) {
        idx[3] = t;
        logs.tensor.AppendUnchecked(idx.data(), spec.scan_intensity);
      }
    } else {
      logs.tensor.AppendUnchecked(idx.data(), spec.scan_intensity);
    }
  }
  logs.tensor.Canonicalize();
  return logs;
}

}  // namespace haten2
