#include "workload/random_tensor.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"
#include "util/string_util.h"

namespace haten2 {

Result<SparseTensor> GenerateRandomTensor(const RandomTensorSpec& spec) {
  if (spec.nnz < 0) {
    return Status::InvalidArgument("nnz must be non-negative");
  }
  if (spec.max_value < spec.min_value) {
    return Status::InvalidArgument("max_value must be >= min_value");
  }
  HATEN2_ASSIGN_OR_RETURN(SparseTensor t, SparseTensor::Create(spec.dims));
  Rng rng(spec.seed);
  t.Reserve(spec.nnz);
  std::vector<int64_t> idx(spec.dims.size());
  for (int64_t e = 0; e < spec.nnz; ++e) {
    for (size_t m = 0; m < spec.dims.size(); ++m) {
      idx[m] = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(spec.dims[m])));
    }
    t.AppendUnchecked(idx.data(),
                      rng.Uniform(spec.min_value, spec.max_value));
  }
  t.Canonicalize();
  return t;
}

Result<SparseTensor> GenerateRandomCubicTensor(int64_t dim, double density,
                                               uint64_t seed) {
  if (dim <= 0) {
    return Status::InvalidArgument("dim must be positive");
  }
  if (density < 0.0 || density > 1.0) {
    return Status::InvalidArgument("density must be in [0, 1]");
  }
  double cells = static_cast<double>(dim) * static_cast<double>(dim) *
                 static_cast<double>(dim);
  RandomTensorSpec spec;
  spec.dims = {dim, dim, dim};
  spec.nnz = static_cast<int64_t>(std::llround(cells * density));
  spec.seed = seed;
  return GenerateRandomTensor(spec);
}

Result<PlantedTensor> GenerateLowRankTensor(const LowRankTensorSpec& spec) {
  if (spec.rank <= 0 || spec.block_size <= 0 || spec.nnz_per_component < 0) {
    return Status::InvalidArgument(
        "rank and block_size must be positive, nnz_per_component >= 0");
  }
  for (int64_t d : spec.dims) {
    if (d < spec.block_size) {
      return Status::InvalidArgument(
          "every mode must be at least block_size long");
    }
  }
  PlantedTensor out;
  HATEN2_ASSIGN_OR_RETURN(out.tensor, SparseTensor::Create(spec.dims));
  Rng rng(spec.seed);
  const size_t order = spec.dims.size();

  out.memberships.resize(static_cast<size_t>(spec.rank));
  for (int64_t r = 0; r < spec.rank; ++r) {
    auto& per_mode = out.memberships[static_cast<size_t>(r)];
    per_mode.resize(order);
    for (size_t m = 0; m < order; ++m) {
      // Sample a block of distinct indices for this component and mode.
      std::vector<int64_t> all(static_cast<size_t>(spec.dims[m]));
      for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int64_t>(i);
      rng.Shuffle(&all);
      all.resize(static_cast<size_t>(spec.block_size));
      std::sort(all.begin(), all.end());
      per_mode[m] = std::move(all);
    }
    std::vector<int64_t> idx(order);
    for (int64_t e = 0; e < spec.nnz_per_component; ++e) {
      for (size_t m = 0; m < order; ++m) {
        const auto& block = per_mode[m];
        idx[m] = block[static_cast<size_t>(
            rng.UniformInt(static_cast<uint64_t>(block.size())))];
      }
      out.tensor.AppendUnchecked(idx.data(), rng.Uniform(0.8, 1.2));
    }
  }
  std::vector<int64_t> idx(order);
  for (int64_t e = 0; e < spec.noise_nnz; ++e) {
    for (size_t m = 0; m < order; ++m) {
      idx[m] = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(spec.dims[m])));
    }
    out.tensor.AppendUnchecked(idx.data(), spec.noise_value);
  }
  out.tensor.Canonicalize();
  return out;
}

}  // namespace haten2
