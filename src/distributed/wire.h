#ifndef HATEN2_DISTRIBUTED_WIRE_H_
#define HATEN2_DISTRIBUTED_WIRE_H_

// Length-prefixed wire protocol between the coordinator process and its
// worker processes (Unix-domain socket pairs). Every message is one frame:
//
//   [magic u32 "H2W1"] [version u16] [type u16] [worker i32] [job i64]
//   [a i64] [b i64] [payload_len u32] [payload_crc32 u32]  = 44 bytes,
//   followed by payload_len payload bytes.
//
// `a` and `b` are frame-type-specific scalars (e.g. task and partition ids
// for shuffled-run frames); run payloads are spill-codec blocks
// (mapreduce/spill_codec.h), so the shuffle's wire format is the same
// self-describing format its disk format uses. The CRC covers the payload;
// the fixed header plus the length prefix bounds-checked against
// kMaxWirePayloadBytes gives truncation and corruption detection like the
// checkpoint manifest's. Every decode error names the peer (worker) and the
// cumulative byte offset on that channel, so an incident log pinpoints
// which worker's stream broke and where.

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/result.h"

namespace haten2 {
namespace distributed {

/// First 4 bytes of every frame ("H2W1" little-endian).
inline constexpr uint32_t kWireMagic = 0x31573248u;
inline constexpr uint16_t kWireVersion = 1;
/// Serialized frame-header width.
inline constexpr size_t kWireHeaderBytes = 44;
/// Upper bound on one frame's payload; a length prefix above this is
/// rejected as corruption before any allocation happens.
inline constexpr uint32_t kMaxWirePayloadBytes = 1u << 30;

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `size` bytes.
uint32_t Crc32(const void* data, size_t size);

enum class FrameType : uint16_t {
  /// coordinator -> worker: job parameters (WireAssignment payload).
  kAssignment = 1,
  /// worker -> coordinator: per-map-task reports (WireTaskReport array).
  kMapDone = 2,
  /// worker -> coordinator: one shuffled run, a = task, b = partition,
  /// payload = spill-codec block.
  kMapRun = 3,
  /// worker -> coordinator: no more runs follow.
  kRunsDone = 4,
  /// coordinator -> worker: a shuffled run for a partition this worker
  /// owns (same shape as kMapRun).
  kReduceRun = 5,
  /// coordinator -> worker: all runs forwarded; reduce now.
  kStartReduce = 6,
  /// worker -> coordinator: one reduce partition's output records,
  /// a = partition, b = record count.
  kOutputRun = 7,
  /// worker -> coordinator: per-partition reduce reports
  /// (WirePartitionReport array); the worker exits after sending it.
  kWorkerDone = 8,
};

struct WireFrame {
  FrameType type = FrameType::kAssignment;
  int32_t worker = -1;
  int64_t job = -1;
  int64_t a = 0;
  int64_t b = 0;
  std::string payload;
};

/// kAssignment payload.
struct WireAssignment {
  int32_t num_workers = 0;
  int32_t num_tasks = 0;
  int32_t num_partitions = 0;
  int32_t reserved = 0;
  /// Failure injection: the worker _exit()s after completing this many map
  /// tasks (0 = disabled). See ClusterConfig::inject_worker_kill_after_tasks.
  int64_t die_after_tasks = 0;
};

/// Per-map-task flags in WireTaskReport.
inline constexpr uint32_t kTaskGaveUp = 1u << 0;     ///< exhausted attempts
inline constexpr uint32_t kTaskEmitterIO = 1u << 1;  ///< spill write failed
inline constexpr uint32_t kTaskDrainIO = 1u << 2;    ///< spill read failed

/// One map task's post-mortem, sent in kMapDone (fixed-size, packed as raw
/// structs — coordinator and workers are fork images of one binary).
struct WireTaskReport {
  int64_t task = 0;
  int64_t processed = 0;
  int64_t pre_combine_records = 0;
  int64_t post_combine_records = 0;
  int64_t spilled_records = 0;
  uint64_t spilled_disk_bytes = 0;
  int32_t attempts = 1;
  uint32_t flags = 0;
};

/// One owned reduce partition's post-mortem, sent in kWorkerDone.
struct WirePartitionReport {
  int64_t partition = 0;
  int64_t groups = 0;
};

/// Serializes header + payload into `out` (appended), exactly the bytes
/// WriteFrame puts on the socket. Exposed so corruption tests can flip
/// bytes before sending.
void EncodeFrameBytes(const WireFrame& frame, std::string* out);

/// \brief One end of a coordinator<->worker socket, with framing, CRC
/// verification, poll()-based read timeouts, and byte accounting.
///
/// Not thread-safe; each channel is driven by one thread of its process.
class WireChannel {
 public:
  /// Takes ownership of `fd`. `peer` names the other end for error
  /// messages, e.g. "worker 3" on the coordinator side.
  WireChannel(int fd, std::string peer);
  ~WireChannel();

  WireChannel(const WireChannel&) = delete;
  WireChannel& operator=(const WireChannel&) = delete;

  /// Writes one frame. Returns IOError naming the peer and the cumulative
  /// byte offset when the peer is gone (EPIPE/ECONNRESET) or the write
  /// fails. SIGPIPE is suppressed (MSG_NOSIGNAL).
  Status WriteFrame(const WireFrame& frame);

  /// Reads one frame, waiting up to `timeout_seconds` (<= 0 waits forever).
  /// Truncated frames, bad magic, version or type mismatches, oversized
  /// length prefixes, and CRC mismatches all return IOError naming the peer
  /// and byte offset; a timeout does too, instead of hanging.
  Status ReadFrame(double timeout_seconds, WireFrame* out);

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }
  const std::string& peer() const { return peer_; }
  int fd() const { return fd_; }

  void Close();

 private:
  Status ReadExact(char* buf, size_t n, double timeout_seconds,
                   uint64_t frame_offset);
  Status WriteExact(const char* buf, size_t n);

  int fd_;
  std::string peer_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

/// Creates a connected Unix-domain socket pair (SOCK_STREAM).
Status MakeSocketPair(int* first_fd, int* second_fd);

}  // namespace distributed
}  // namespace haten2

#endif  // HATEN2_DISTRIBUTED_WIRE_H_
