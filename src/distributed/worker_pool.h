#ifndef HATEN2_DISTRIBUTED_WORKER_POOL_H_
#define HATEN2_DISTRIBUTED_WORKER_POOL_H_

// Pool of local worker processes for the subprocess Engine backend.
//
// Workers are fork() images of the coordinator, one gang per MapReduce job:
// the job's reader/reducer closures (which cannot be serialized) are valid
// in the children because fork copies the address space, exactly like an
// exec-less multiprocessing pool. The pool object itself is persistent —
// it owns the per-worker-slot statistics (tasks run, wire bytes, restarts)
// across jobs and the monitoring/restart policy: a slot whose process died
// abnormally (signal, nonzero exit, lost socket) is respawned for the next
// gang and its `restarts` counter incremented, which is the signal an
// operator reads in `haten2-stats-v9` per-worker counters during an
// incident (docs/OPERATIONS.md).

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "distributed/wire.h"
#include "util/result.h"

namespace haten2 {
namespace distributed {

/// Per-worker-slot counters exported as the `workers` array of
/// haten2-stats-v9 (additive over the engine's lifetime).
struct WorkerStats {
  int worker = 0;
  /// Map tasks this slot completed across all jobs.
  int64_t tasks = 0;
  /// Bytes the coordinator sent to / received from this slot.
  uint64_t wire_bytes_sent = 0;
  uint64_t wire_bytes_received = 0;
  /// Times this slot was respawned after its process died abnormally
  /// (crash, kill injection, lost socket) rather than exiting cleanly.
  int64_t restarts = 0;
};

/// \brief Spawns, monitors, and restarts the worker processes of the
/// subprocess backend.
///
/// Not thread-safe for gang operations: the engine serializes subprocess
/// jobs on one coordinator thread (StatsSnapshot alone may race with a
/// running gang and takes the internal lock).
class WorkerPool {
 public:
  explicit WorkerPool(int num_workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int num_workers() const { return static_cast<int>(slots_.size()); }

  /// Forks one child per slot. In each child, `child_main(fd, worker)` runs
  /// with `fd` the child end of that worker's socket pair, and the child
  /// _exit()s with its return value (0 = clean). Slots whose previous
  /// incarnation died abnormally are counted as restarts. Fails (leaving no
  /// gang) if a gang is already active or a fork/socketpair fails.
  Status SpawnGang(const std::function<int(int fd, int worker)>& child_main);

  bool gang_active() const { return gang_active_; }

  /// Coordinator-side channel to worker `w` of the active gang.
  WireChannel* channel(int w) { return slots_[static_cast<size_t>(w)].channel.get(); }

  /// Reaps the active gang and folds its channel byte counts into the slot
  /// stats. With `kill` true, workers still running are SIGKILLed first
  /// (deliberate termination — not counted as an abnormal death); workers
  /// found already dead with a signal or nonzero exit status are marked
  /// abnormal either way, so their next spawn counts as a restart.
  void FinishGang(bool kill);

  /// Credits `tasks` completed map tasks to slot `w`.
  void NoteTasksCompleted(int w, int64_t tasks);

  /// One-shot worker-kill injection bookkeeping: called once per worker per
  /// job assignment, in worker order, with that worker's assigned map-task
  /// count. Returns the die_after_tasks value for the assignment — nonzero
  /// exactly once, for the worker whose cumulative assignment first reaches
  /// `knob` — and latches, so the node retry that follows the injected
  /// death runs clean. `knob` <= 0 disables.
  int64_t PlanKillInjection(int64_t knob, int64_t assigned_tasks);

  std::vector<WorkerStats> StatsSnapshot() const;

 private:
  struct Slot {
    pid_t pid = -1;
    std::unique_ptr<WireChannel> channel;
    /// Previous incarnation died abnormally; next spawn is a restart.
    bool needs_restart = false;
    WorkerStats stats;
  };

  std::vector<Slot> slots_;
  bool gang_active_ = false;
  int64_t injection_assigned_total_ = 0;
  bool injection_fired_ = false;
  mutable std::mutex mu_;
};

}  // namespace distributed
}  // namespace haten2

#endif  // HATEN2_DISTRIBUTED_WORKER_POOL_H_
