#ifndef HATEN2_DISTRIBUTED_DISTRIBUTED_ENGINE_H_
#define HATEN2_DISTRIBUTED_DISTRIBUTED_ENGINE_H_

// Engine pinned to the subprocess backend — the programmatic equivalent of
// `--backend=subprocess [--num_workers=N]`. The backend itself lives behind
// the plain Engine API (set ClusterConfig::backend); this wrapper exists for
// call sites that want the choice in the type rather than in a string field.

#include "mapreduce/cluster.h"
#include "mapreduce/engine.h"

namespace haten2 {
namespace distributed {

/// Returns `config` with the subprocess backend selected (and, when
/// `num_workers` > 0, that worker count).
inline ClusterConfig WithSubprocessBackend(ClusterConfig config,
                                           int num_workers = 0) {
  config.backend = "subprocess";
  if (num_workers > 0) config.num_workers = num_workers;
  return config;
}

/// \brief Engine whose jobs always run on forked worker processes.
class DistributedEngine : public Engine {
 public:
  explicit DistributedEngine(const ClusterConfig& config, int num_workers = 0)
      : Engine(WithSubprocessBackend(config, num_workers)) {}
};

}  // namespace distributed
}  // namespace haten2

#endif  // HATEN2_DISTRIBUTED_DISTRIBUTED_ENGINE_H_
