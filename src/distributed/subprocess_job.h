#ifndef HATEN2_DISTRIBUTED_SUBPROCESS_JOB_H_
#define HATEN2_DISTRIBUTED_SUBPROCESS_JOB_H_

// Subprocess execution of one MapReduce job: the coordinator (the process
// that called Engine::Run) forks a gang of N workers through a WorkerPool
// and shards the job over them via the wire protocol (distributed/wire.h).
//
// Per-job protocol, in phases:
//
//   coordinator                         worker w (of W)
//   ----------------------------------  --------------------------------
//   kAssignment (tasks, partitions) ->
//                                       runs map tasks {t : t % W == w}
//                                       (same emitters, spill files,
//                                       combiner, and deterministic
//                                       failure draws as in-process)
//                                    <- kMapDone (per-task reports)
//                                    <- kMapRun* (spill-codec blocks)
//                                    <- kRunsDone
//   forwards each run to the owner
//   of its partition (p % W == w),
//   task-ascending per partition
//   kReduceRun* -> ... kStartReduce ->
//                                       groups + reduces owned
//                                       partitions ascending
//                                    <- kOutputRun* (per partition)
//                                    <- kWorkerDone
//   concatenates outputs partition-
//   ascending; reaps the gang
//
// Bit-identity with the in-process engine: a worker shuffles with the same
// ShuffleEmitter, combines with the same fold, and groups with the same
// hash map in the same insertion order — per partition, runs are inserted
// task-ascending with each run's spill-drained records before its buffered
// records, which is exactly the in-process drain order — so reducer value
// order, reducer iteration order, and the partition-ascending output
// concatenation all match byte for byte. Oversized partitions spill
// through the existing codec in the worker, and each shuffled run crosses
// the wire as a spill-codec block.
//
// Worker death (crash, kill injection, lost/corrupt/timed-out socket) fails
// the job with failure kind "worker_lost" and kAborted — the transient
// status the PlanScheduler's node retry re-runs with a fresh job id.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "distributed/wire.h"
#include "distributed/worker_pool.h"
#include "mapreduce/cluster.h"
#include "mapreduce/hash.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/spill_codec.h"
#include "mapreduce/stats.h"
#include "util/memory_tracker.h"
#include "util/result.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace haten2 {
namespace distributed {

/// Worker exit codes (beyond the child_main contract's 0 = clean).
inline constexpr int kWorkerExitInjectedKill = 17;
inline constexpr int kWorkerExitProtocolError = 3;

/// Everything a subprocess job needs besides the closures. Pointer members
/// are not owned.
struct SubprocessJobEnv {
  const ClusterConfig* config = nullptr;
  WorkerPool* pool = nullptr;
  /// Coordinator-side shuffle budget (nullptr = unlimited); workers run
  /// unmetered and the coordinator charges the job's raw shuffle width.
  MemoryTracker* tracker = nullptr;
  /// Spill-file prefix up to the per-task suffix ("" disables spilling).
  std::string spill_prefix_base;
  std::string name;
  int64_t job_id = -1;
  int64_t num_input_records = 0;
};

/// Output-record wire support: keys must be fixed-size; values fixed-size
/// or std::vector of fixed-size elements (the merge jobs' row vectors).
/// Other output types run on the in-process backend only.
template <typename T>
struct IsWireVectorValue : std::false_type {};
template <typename U>
struct IsWireVectorValue<std::vector<U>> : IsFixedSizeRecord<U> {};

template <typename K, typename V>
inline constexpr bool kWireSerializableOutput =
    IsFixedSizeRecord<K>::value &&
    (IsFixedSizeRecord<V>::value || IsWireVectorValue<V>::value);

template <typename K, typename V>
void SerializeOutputRecords(const std::vector<std::pair<K, V>>& records,
                            std::string* out) {
  if constexpr (IsFixedSizeRecord<V>::value) {
    for (const auto& rec : records) {
      out->append(reinterpret_cast<const char*>(&rec), sizeof(rec));
    }
  } else {
    using U = typename V::value_type;
    for (const auto& rec : records) {
      out->append(reinterpret_cast<const char*>(&rec.first), sizeof(K));
      uint64_t n = static_cast<uint64_t>(rec.second.size());
      out->append(reinterpret_cast<const char*>(&n), sizeof(n));
      out->append(reinterpret_cast<const char*>(rec.second.data()),
                  n * sizeof(U));
    }
  }
}

/// Appends `expected_records` decoded records to *out; IOError (naming
/// `context`) on any size mismatch.
template <typename K, typename V>
Status DeserializeOutputRecords(const std::string& payload,
                                int64_t expected_records,
                                const std::string& context,
                                std::vector<std::pair<K, V>>* out) {
  if constexpr (IsFixedSizeRecord<V>::value) {
    using Record = std::pair<K, V>;
    if (payload.size() !=
        static_cast<uint64_t>(expected_records) * sizeof(Record)) {
      return Status::IOError("output record payload size mismatch in " +
                             context);
    }
    Record rec;
    for (int64_t i = 0; i < expected_records; ++i) {
      std::memcpy(static_cast<void*>(&rec),
                  payload.data() + static_cast<size_t>(i) * sizeof(Record),
                  sizeof(Record));
      out->push_back(rec);
    }
  } else {
    using U = typename V::value_type;
    size_t pos = 0;
    for (int64_t i = 0; i < expected_records; ++i) {
      if (payload.size() - pos < sizeof(K) + sizeof(uint64_t)) {
        return Status::IOError("truncated output record in " + context);
      }
      K key;
      std::memcpy(static_cast<void*>(&key), payload.data() + pos, sizeof(K));
      pos += sizeof(K);
      uint64_t n = 0;
      std::memcpy(&n, payload.data() + pos, sizeof(n));
      pos += sizeof(n);
      if (n > (payload.size() - pos) / sizeof(U)) {
        return Status::IOError("truncated output vector in " + context);
      }
      V values(static_cast<size_t>(n));
      if (n > 0) {
        std::memcpy(values.data(), payload.data() + pos,
                    static_cast<size_t>(n) * sizeof(U));
      }
      pos += static_cast<size_t>(n) * sizeof(U);
      out->emplace_back(key, std::move(values));
    }
    if (pos != payload.size()) {
      return Status::IOError("trailing bytes after output records in " +
                             context);
    }
  }
  return Status::OK();
}

/// \brief Worker-side job execution; runs inside the fork child.
///
/// Returns the child exit code (0 = clean, including jobs the worker knows
/// will fail — the coordinator reads the failure from the task reports).
template <typename KMid, typename VMid, typename KOut, typename VOut,
          typename ReaderFn, typename ReduceFn>
int SubprocessWorkerMain(
    int fd, int worker, const SubprocessJobEnv& env, ReaderFn& reader,
    ReduceFn& reducer,
    const std::function<VMid(const VMid&, const VMid&)>& combiner) {
  using Record = std::pair<KMid, VMid>;
  const ClusterConfig& config = *env.config;
  const double timeout = config.worker_io_timeout_seconds;
  WireChannel ch(fd, "coordinator");

  WireFrame frame;
  if (!ch.ReadFrame(timeout, &frame).ok() ||
      frame.type != FrameType::kAssignment ||
      frame.payload.size() != sizeof(WireAssignment)) {
    return kWorkerExitProtocolError;
  }
  WireAssignment asn;
  std::memcpy(&asn, frame.payload.data(), sizeof(asn));
  const int W = asn.num_workers;
  const int num_tasks = asn.num_tasks;
  const int num_partitions = asn.num_partitions;
  if (W <= 0 || worker >= W || num_tasks <= 0 || num_partitions <= 0) {
    return kWorkerExitProtocolError;
  }
  const int64_t n = env.num_input_records;
  const int64_t chunk = (n + num_tasks - 1) / std::max(num_tasks, 1);

  std::vector<int> my_tasks;
  for (int t = worker; t < num_tasks; t += W) my_tasks.push_back(t);

  // ---- Map: same attempt loop, emitters, and spill config as in-process
  // (unmetered — the coordinator owns the shuffle budget). ----
  std::vector<ShuffleEmitter<KMid, VMid>> emitters;
  emitters.reserve(my_tasks.size());
  std::vector<WireTaskReport> reports(my_tasks.size());
  bool job_fatal = false;
  int64_t completed_tasks = 0;
  for (size_t i = 0; i < my_tasks.size(); ++i) {
    const int t = my_tasks[i];
    std::string spill_prefix;
    if (!env.spill_prefix_base.empty()) {
      spill_prefix = env.spill_prefix_base + "_t" + std::to_string(t);
    }
    emitters.emplace_back(num_partitions, nullptr, std::move(spill_prefix),
                          config.spill_threshold_records,
                          config.spill_compression,
                          config.inject_spill_failure_after_bytes);
    ShuffleEmitter<KMid, VMid>& em = emitters.back();
    WireTaskReport& rep = reports[i];
    rep.task = t;
    int attempt = 1;
    while (attempt <= config.max_task_attempts &&
           ShouldFailMapAttempt(config, env.job_id,
                                static_cast<size_t>(t), attempt)) {
      ++attempt;
    }
    rep.attempts = std::min(attempt, config.max_task_attempts);
    if (attempt > config.max_task_attempts) {
      rep.flags |= kTaskGaveUp;
      job_fatal = true;
    } else {
      const int64_t begin = static_cast<int64_t>(t) * chunk;
      const int64_t end = std::min(begin + chunk, n);
      int64_t processed = 0;
      for (int64_t r = begin; r < end; ++r) {
        reader(r, &em);
        ++processed;
        if (em.failed()) break;
      }
      em.Flush();
      rep.processed = processed;
      ++completed_tasks;
    }
    if (em.failed()) {
      rep.flags |= kTaskEmitterIO;
      job_fatal = true;
    }
    rep.pre_combine_records = em.TotalRecords();
    rep.spilled_records = em.TotalSpilledRecords();
    rep.spilled_disk_bytes = em.TotalSpilledDiskBytes();
    if (asn.die_after_tasks > 0 && completed_tasks >= asn.die_after_tasks) {
      // Injected worker death: vanish without a word, spill files and all,
      // exactly as a machine loss would.
      ::_exit(kWorkerExitInjectedKill);
    }
  }

  // ---- Combine (in-memory buffers only, like in-process). ----
  if (combiner && !job_fatal) {
    for (auto& em : emitters) {
      for (auto& buf : em.buffers()) {
        CombineShuffleBuffer<KMid, VMid>(&buf, combiner);
      }
    }
  }
  for (size_t i = 0; i < my_tasks.size(); ++i) {
    reports[i].post_combine_records = emitters[i].TotalRecords();
  }

  // ---- Serialize runs before kMapDone so drain failures are reported in
  // the task flags. Run = one (task, partition)'s records, spill-drained
  // records first, then the buffer — the in-process grouping order. ----
  struct Run {
    int64_t task;
    int64_t partition;
    std::string block;
  };
  std::vector<Run> runs;
  if (!job_fatal) {
    for (size_t i = 0; i < my_tasks.size() && !job_fatal; ++i) {
      ShuffleEmitter<KMid, VMid>& em = emitters[i];
      for (int p = 0; p < num_partitions; ++p) {
        std::vector<Record> run;
        run.reserve(static_cast<size_t>(
                        em.SpilledRecords(static_cast<size_t>(p))) +
                    em.buffers()[static_cast<size_t>(p)].size());
        Status drained = em.DrainSpill(
            static_cast<size_t>(p),
            [&run](const Record& rec) { run.push_back(rec); });
        if (!drained.ok()) {
          reports[i].flags |= kTaskDrainIO;
          job_fatal = true;
          break;
        }
        for (auto& rec : em.buffers()[static_cast<size_t>(p)]) {
          run.push_back(rec);
        }
        em.buffers()[static_cast<size_t>(p)].clear();
        em.buffers()[static_cast<size_t>(p)].shrink_to_fit();
        if (run.empty()) continue;
        Run out;
        out.task = my_tasks[i];
        out.partition = p;
        EncodeSpillBlock(reinterpret_cast<const char*>(run.data()),
                         run.size(), sizeof(Record), sizeof(KMid),
                         &out.block);
        runs.push_back(std::move(out));
      }
    }
  }
  if (job_fatal) {
    for (auto& em : emitters) em.RemoveAllSpills();
    runs.clear();
  }

  WireFrame done;
  done.type = FrameType::kMapDone;
  done.worker = worker;
  done.job = env.job_id;
  done.a = static_cast<int64_t>(reports.size());
  if (!reports.empty()) {
    done.payload.assign(reinterpret_cast<const char*>(reports.data()),
                        reports.size() * sizeof(WireTaskReport));
  }
  if (!ch.WriteFrame(done).ok()) return kWorkerExitProtocolError;
  for (const Run& r : runs) {
    WireFrame f;
    f.type = FrameType::kMapRun;
    f.worker = worker;
    f.job = env.job_id;
    f.a = r.task;
    f.b = r.partition;
    f.payload = r.block;
    if (!ch.WriteFrame(f).ok()) return kWorkerExitProtocolError;
  }
  WireFrame runs_done;
  runs_done.type = FrameType::kRunsDone;
  runs_done.worker = worker;
  runs_done.job = env.job_id;
  if (!ch.WriteFrame(runs_done).ok()) return kWorkerExitProtocolError;
  // The coordinator fails the job from the reports; nothing left to do.
  if (job_fatal) return 0;

  // ---- Group: insert forwarded runs in arrival order — the coordinator
  // sends task-ascending per partition, mirroring the in-process drain. ----
  struct StdHashAdapter {
    size_t operator()(const KMid& k) const {
      return static_cast<size_t>(ShuffleHash<KMid>()(k));
    }
  };
  using GroupMap = std::unordered_map<KMid, std::vector<VMid>, StdHashAdapter>;
  std::unordered_map<int64_t, GroupMap> partition_groups;
  std::string decoded;
  while (true) {
    if (!ch.ReadFrame(timeout, &frame).ok()) return kWorkerExitProtocolError;
    if (frame.type == FrameType::kStartReduce) break;
    if (frame.type != FrameType::kReduceRun) return kWorkerExitProtocolError;
    if (frame.payload.size() < kSpillBlockHeaderBytes) {
      return kWorkerExitProtocolError;
    }
    const std::string context = StrFormat(
        "forwarded run t%lld p%lld", static_cast<long long>(frame.a),
        static_cast<long long>(frame.b));
    Result<SpillBlockHeader> header = ParseSpillBlockHeader(
        frame.payload.data(), kSpillBlockHeaderBytes, context);
    if (!header.ok()) return kWorkerExitProtocolError;
    decoded.clear();
    if (!DecodeSpillBlockPayload(
             *header, frame.payload.data() + kSpillBlockHeaderBytes,
             frame.payload.size() - kSpillBlockHeaderBytes, sizeof(Record),
             sizeof(KMid), context, &decoded)
             .ok()) {
      return kWorkerExitProtocolError;
    }
    GroupMap& groups = partition_groups[frame.b];
    Record rec;
    for (uint64_t i = 0; i < header->record_count; ++i) {
      std::memcpy(static_cast<void*>(&rec),
                  decoded.data() + i * sizeof(Record), sizeof(Record));
      groups[rec.first].push_back(rec.second);
    }
  }

  // ---- Reduce owned partitions ascending; stream outputs back. ----
  std::vector<WirePartitionReport> partition_reports;
  for (int p = worker; p < num_partitions; p += W) {
    GroupMap& groups = partition_groups[p];
    OutputEmitter<KOut, VOut> out;
    for (auto& [key, values] : groups) {
      reducer(key, values, &out);
    }
    WirePartitionReport pr;
    pr.partition = p;
    pr.groups = static_cast<int64_t>(groups.size());
    partition_reports.push_back(pr);
    WireFrame f;
    f.type = FrameType::kOutputRun;
    f.worker = worker;
    f.job = env.job_id;
    f.a = p;
    f.b = static_cast<int64_t>(out.records().size());
    SerializeOutputRecords<KOut, VOut>(out.records(), &f.payload);
    if (!ch.WriteFrame(f).ok()) return kWorkerExitProtocolError;
    partition_groups.erase(p);
  }
  WireFrame worker_done;
  worker_done.type = FrameType::kWorkerDone;
  worker_done.worker = worker;
  worker_done.job = env.job_id;
  if (!partition_reports.empty()) {
    worker_done.payload.assign(
        reinterpret_cast<const char*>(partition_reports.data()),
        partition_reports.size() * sizeof(WirePartitionReport));
  }
  if (!ch.WriteFrame(worker_done).ok()) return kWorkerExitProtocolError;
  return 0;
}

/// \brief Coordinator-side job execution (called by Engine::Run when
/// ClusterConfig::backend == "subprocess").
///
/// Fills `stats` exactly as the in-process engine would (the caller records
/// it); failure kinds are "aborted", "io_error", "oom" — plus
/// "worker_lost" (kAborted) when a worker process dies or its channel
/// breaks, which the PlanScheduler treats as transient and retries with a
/// fresh job id.
template <typename KMid, typename VMid, typename KOut, typename VOut,
          typename ReaderFn, typename ReduceFn>
Result<std::vector<std::pair<KOut, VOut>>> RunSubprocessJob(
    const SubprocessJobEnv& env, ReaderFn& reader, ReduceFn& reducer,
    const std::function<VMid(const VMid&, const VMid&)>& combiner,
    JobStats* stats) {
  using Record = std::pair<KMid, VMid>;
  using Output = std::vector<std::pair<KOut, VOut>>;
  constexpr uint64_t kRecordBytes = sizeof(Record);
  const ClusterConfig& config = *env.config;
  WorkerPool* pool = env.pool;
  const double timeout = config.worker_io_timeout_seconds;

  WallTimer phase_timer;
  auto take_phase = [&phase_timer](double* sink) {
    *sink = phase_timer.ElapsedSeconds();
    phase_timer.Restart();
  };

  const int num_partitions = config.EffectiveReduceTasks();
  int num_tasks = config.EffectiveMapTasks();
  if (env.num_input_records < num_tasks) {
    num_tasks =
        static_cast<int>(std::max<int64_t>(1, env.num_input_records));
  }
  const int W = pool->num_workers();

  stats->map_task_records.assign(static_cast<size_t>(num_tasks), 0);
  stats->map_task_attempts.assign(static_cast<size_t>(num_tasks), 1);
  stats->map_task_spilled_bytes.assign(static_cast<size_t>(num_tasks), 0);
  stats->reduce_partition_records.assign(static_cast<size_t>(num_partitions),
                                         0);
  stats->reduce_partition_bytes.assign(static_cast<size_t>(num_partitions),
                                       0);

  uint64_t charged_bytes = 0;
  auto release_all = [&] {
    if (env.tracker != nullptr && charged_bytes > 0) {
      env.tracker->Release(charged_bytes);
    }
    charged_bytes = 0;
  };
  auto worker_lost = [&](int w, const Status& cause) -> Status {
    pool->FinishGang(/*kill=*/true);
    release_all();
    stats->failure = "worker_lost";
    return Status::Aborted(StrFormat("job '%s': worker %d lost: %s",
                                     env.name.c_str(), w,
                                     cause.ToString().c_str()));
  };
  auto fail_job = [&](const char* kind, Status status) -> Status {
    pool->FinishGang(/*kill=*/true);
    release_all();
    stats->failure = kind;
    return status;
  };

  // The gang is forked per job: the children inherit this job's closures
  // (and the input they capture) through the fork image.
  Status spawned = pool->SpawnGang([&](int fd, int worker) {
    return SubprocessWorkerMain<KMid, VMid, KOut, VOut>(
        fd, worker, env, reader, reducer, combiner);
  });
  if (!spawned.ok()) {
    stats->failure = "worker_lost";
    return Status::Aborted("job '" + env.name +
                           "': " + std::string(spawned.message()));
  }

  // ---- Map phase: assign, then collect reports and shuffled runs. ----
  for (int w = 0; w < W; ++w) {
    int64_t assigned = 0;
    for (int t = w; t < num_tasks; t += W) ++assigned;
    WireAssignment asn;
    asn.num_workers = W;
    asn.num_tasks = num_tasks;
    asn.num_partitions = num_partitions;
    asn.die_after_tasks = pool->PlanKillInjection(
        config.inject_worker_kill_after_tasks, assigned);
    WireFrame f;
    f.type = FrameType::kAssignment;
    f.worker = w;
    f.job = env.job_id;
    f.payload.assign(reinterpret_cast<const char*>(&asn), sizeof(asn));
    Status s = pool->channel(w)->WriteFrame(f);
    if (!s.ok()) return worker_lost(w, s);
  }

  bool task_gave_up = false;
  bool emitter_io = false;
  bool drain_io = false;
  // Shuffled runs keyed (task, partition): raw spill-codec blocks forwarded
  // to reduce owners without decoding (record counts come from the block
  // headers). The ordered map gives the forwarding loop task-ascending
  // order per partition — the in-process grouping order.
  std::map<std::pair<int64_t, int64_t>, std::string> runs;
  std::map<std::pair<int64_t, int64_t>, int64_t> run_counts;
  for (int w = 0; w < W; ++w) {
    WireChannel* ch = pool->channel(w);
    WireFrame f;
    Status s = ch->ReadFrame(timeout, &f);
    if (!s.ok()) return worker_lost(w, s);
    if (f.type != FrameType::kMapDone) {
      return worker_lost(
          w, Status::IOError("protocol error: expected kMapDone"));
    }
    const size_t count = f.payload.size() / sizeof(WireTaskReport);
    if (f.payload.size() != count * sizeof(WireTaskReport) ||
        static_cast<int64_t>(count) != f.a) {
      return worker_lost(w, Status::IOError("malformed kMapDone payload"));
    }
    int64_t worker_tasks = 0;
    for (size_t i = 0; i < count; ++i) {
      WireTaskReport rep;
      std::memcpy(&rep, f.payload.data() + i * sizeof(rep), sizeof(rep));
      if (rep.task < 0 || rep.task >= num_tasks) {
        return worker_lost(w,
                           Status::IOError("task id out of range in report"));
      }
      const size_t t = static_cast<size_t>(rep.task);
      stats->map_task_records[t] = rep.processed;
      stats->map_task_attempts[t] = rep.attempts;
      stats->map_task_spilled_bytes[t] = rep.spilled_disk_bytes;
      stats->spilled_records += rep.spilled_records;
      stats->spilled_compressed_bytes += rep.spilled_disk_bytes;
      stats->pre_combine_records += rep.pre_combine_records;
      stats->map_output_records += rep.post_combine_records;
      if (rep.flags & kTaskGaveUp) task_gave_up = true;
      if (rep.flags & kTaskEmitterIO) emitter_io = true;
      if (rep.flags & kTaskDrainIO) drain_io = true;
      if (!(rep.flags & kTaskGaveUp)) ++worker_tasks;
    }
    pool->NoteTasksCompleted(w, worker_tasks);
    while (true) {
      Status rs = ch->ReadFrame(timeout, &f);
      if (!rs.ok()) return worker_lost(w, rs);
      if (f.type == FrameType::kRunsDone) break;
      if (f.type != FrameType::kMapRun) {
        return worker_lost(
            w, Status::IOError("protocol error: expected kMapRun"));
      }
      if (f.a < 0 || f.a >= num_tasks || f.b < 0 || f.b >= num_partitions) {
        return worker_lost(w, Status::IOError("run ids out of range"));
      }
      if (f.payload.size() < kSpillBlockHeaderBytes) {
        return worker_lost(w, Status::IOError("short shuffled-run block"));
      }
      Result<SpillBlockHeader> header = ParseSpillBlockHeader(
          f.payload.data(), kSpillBlockHeaderBytes,
          StrFormat("run t%lld p%lld from worker %d",
                    static_cast<long long>(f.a),
                    static_cast<long long>(f.b), w));
      if (!header.ok()) return worker_lost(w, header.status());
      run_counts[{f.a, f.b}] =
          static_cast<int64_t>(header->record_count);
      runs[{f.a, f.b}] = std::move(f.payload);
    }
  }
  take_phase(&stats->phases.map_seconds);

  // Derived map counters, same definitions as in-process. (Combine time is
  // folded into map_seconds: it runs inside the workers' map phase.)
  stats->map_output_bytes =
      static_cast<uint64_t>(stats->map_output_records) * kRecordBytes;
  stats->spilled_bytes =
      static_cast<uint64_t>(stats->spilled_records) * kRecordBytes;
  stats->spilled_raw_bytes = stats->spilled_bytes;
  for (int attempts : stats->map_task_attempts) {
    stats->map_task_retries += attempts - 1;
  }

  if (task_gave_up) {
    return fail_job(
        "aborted",
        Status::Aborted("job '" + env.name +
                        "': a map task exceeded max_task_attempts"));
  }
  if (emitter_io || drain_io) {
    return fail_job(
        "io_error",
        Status::IOError("job '" + env.name + "': a worker spill " +
                        (emitter_io ? std::string("write")
                                    : std::string("read")) +
                        " failed"));
  }
  // Shuffle budget: charge the same raw pre-combine width the in-process
  // emitters charge, in one step once the workers report their counts.
  if (env.tracker != nullptr) {
    const uint64_t bytes =
        static_cast<uint64_t>(stats->pre_combine_records) * kRecordBytes;
    Status s = env.tracker->Charge(bytes);
    if (!s.ok()) {
      return fail_job(
          "oom", Status::ResourceExhausted(
                     "o.o.m.: job '" + env.name +
                     "' exceeded the cluster shuffle-memory budget"));
    }
    charged_bytes = bytes;
  }

  // ---- Shuffle phase: forward each run to its partition's owner. ----
  for (auto& [key, block] : runs) {
    const int64_t t = key.first;
    const int64_t p = key.second;
    const int owner = static_cast<int>(p % W);
    WireFrame f;
    f.type = FrameType::kReduceRun;
    f.worker = owner;
    f.job = env.job_id;
    f.a = t;
    f.b = p;
    f.payload = std::move(block);
    Status s = pool->channel(owner)->WriteFrame(f);
    if (!s.ok()) return worker_lost(owner, s);
    const int64_t received = run_counts[key];
    stats->reduce_partition_records[static_cast<size_t>(p)] += received;
    stats->reduce_partition_bytes[static_cast<size_t>(p)] +=
        static_cast<uint64_t>(received) * kRecordBytes;
  }
  runs.clear();
  for (int w = 0; w < W; ++w) {
    WireFrame f;
    f.type = FrameType::kStartReduce;
    f.worker = w;
    f.job = env.job_id;
    Status s = pool->channel(w)->WriteFrame(f);
    if (!s.ok()) return worker_lost(w, s);
  }
  take_phase(&stats->phases.shuffle_seconds);

  // ---- Reduce phase: collect per-partition outputs. ----
  std::vector<std::string> partition_payloads(
      static_cast<size_t>(num_partitions));
  std::vector<int64_t> partition_counts(static_cast<size_t>(num_partitions),
                                        0);
  for (int w = 0; w < W; ++w) {
    WireChannel* ch = pool->channel(w);
    while (true) {
      WireFrame f;
      Status s = ch->ReadFrame(timeout, &f);
      if (!s.ok()) return worker_lost(w, s);
      if (f.type == FrameType::kWorkerDone) {
        const size_t count = f.payload.size() / sizeof(WirePartitionReport);
        if (f.payload.size() != count * sizeof(WirePartitionReport)) {
          return worker_lost(
              w, Status::IOError("malformed kWorkerDone payload"));
        }
        for (size_t i = 0; i < count; ++i) {
          WirePartitionReport pr;
          std::memcpy(&pr, f.payload.data() + i * sizeof(pr), sizeof(pr));
          stats->reduce_input_groups += pr.groups;
        }
        break;
      }
      if (f.type != FrameType::kOutputRun) {
        return worker_lost(
            w, Status::IOError("protocol error: expected kOutputRun"));
      }
      if (f.a < 0 || f.a >= num_partitions ||
          static_cast<int>(f.a % W) != w) {
        return worker_lost(
            w, Status::IOError("output partition out of range"));
      }
      partition_counts[static_cast<size_t>(f.a)] = f.b;
      partition_payloads[static_cast<size_t>(f.a)] = std::move(f.payload);
    }
  }
  pool->FinishGang(/*kill=*/false);

  Output output;
  for (int p = 0; p < num_partitions; ++p) {
    if (partition_counts[static_cast<size_t>(p)] == 0 &&
        partition_payloads[static_cast<size_t>(p)].empty()) {
      continue;
    }
    Status s = DeserializeOutputRecords<KOut, VOut>(
        partition_payloads[static_cast<size_t>(p)],
        partition_counts[static_cast<size_t>(p)],
        StrFormat("output partition %d", p), &output);
    if (!s.ok()) {
      release_all();
      stats->failure = "io_error";
      return Status::IOError("job '" + env.name +
                             "': " + std::string(s.message()));
    }
  }
  stats->reduce_output_records = static_cast<int64_t>(output.size());
  take_phase(&stats->phases.reduce_seconds);
  release_all();
  return output;
}

}  // namespace distributed
}  // namespace haten2

#endif  // HATEN2_DISTRIBUTED_SUBPROCESS_JOB_H_
