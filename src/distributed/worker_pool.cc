#include "distributed/worker_pool.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/string_util.h"

// TSan aborts by default when a multithreaded process forks; the engine
// always carries a thread pool, so the subprocess backend would be
// untestable under tools/check.sh thread without relaxing that. The fork
// children never spawn threads (a worker runs its map and reduce work
// sequentially), which is the case TSan's documentation blesses.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define HATEN2_TSAN_FORK_OPTIONS 1
#endif
#endif
#if !defined(HATEN2_TSAN_FORK_OPTIONS) && defined(__SANITIZE_THREAD__)
#define HATEN2_TSAN_FORK_OPTIONS 1
#endif
#ifdef HATEN2_TSAN_FORK_OPTIONS
extern "C" const char* __tsan_default_options() {
  return "die_after_fork=0";
}
#endif

namespace haten2 {
namespace distributed {

WorkerPool::WorkerPool(int num_workers) {
  if (num_workers < 1) num_workers = 1;
  slots_.resize(static_cast<size_t>(num_workers));
  for (size_t w = 0; w < slots_.size(); ++w) {
    slots_[w].stats.worker = static_cast<int>(w);
  }
}

WorkerPool::~WorkerPool() {
  if (gang_active_) FinishGang(/*kill=*/true);
}

Status WorkerPool::SpawnGang(
    const std::function<int(int fd, int worker)>& child_main) {
  if (gang_active_) {
    return Status::Internal("WorkerPool: a gang is already active");
  }
  const size_t n = slots_.size();
  std::vector<int> parent_fds(n, -1);
  std::vector<int> child_fds(n, -1);
  auto close_all = [&] {
    for (size_t i = 0; i < n; ++i) {
      if (parent_fds[i] >= 0) ::close(parent_fds[i]);
      if (child_fds[i] >= 0) ::close(child_fds[i]);
    }
  };
  for (size_t w = 0; w < n; ++w) {
    Status s = MakeSocketPair(&parent_fds[w], &child_fds[w]);
    if (!s.ok()) {
      close_all();
      return s;
    }
  }

  // Buffered stdio written before fork would otherwise be flushed once per
  // child as well as by the coordinator.
  std::fflush(stdout);
  std::fflush(stderr);

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t w = 0; w < n; ++w) {
      if (slots_[w].needs_restart) {
        ++slots_[w].stats.restarts;
        slots_[w].needs_restart = false;
      }
    }
  }

  for (size_t w = 0; w < n; ++w) {
    pid_t pid = ::fork();
    if (pid < 0) {
      Status s = Status::Internal(
          StrFormat("WorkerPool: fork failed for worker %zu: %s", w,
                    std::strerror(errno)));
      for (size_t k = 0; k < w; ++k) {
        ::kill(slots_[k].pid, SIGKILL);
        ::waitpid(slots_[k].pid, nullptr, 0);
        slots_[k].pid = -1;
      }
      close_all();
      return s;
    }
    if (pid == 0) {
      // Child: keep only this worker's child fd.
      for (size_t k = 0; k < n; ++k) {
        if (parent_fds[k] >= 0) ::close(parent_fds[k]);
        if (k != w && child_fds[k] >= 0) ::close(child_fds[k]);
      }
      int rc = child_main(child_fds[w], static_cast<int>(w));
      // _exit: never run the coordinator's atexit/static destructors (or
      // flush its stdio again) from a fork child.
      ::_exit(rc);
    }
    slots_[w].pid = pid;
  }
  for (size_t w = 0; w < n; ++w) {
    ::close(child_fds[w]);
    child_fds[w] = -1;
    slots_[w].channel = std::make_unique<WireChannel>(
        parent_fds[w], StrFormat("worker %zu", w));
    parent_fds[w] = -1;
  }
  gang_active_ = true;
  return Status::OK();
}

void WorkerPool::FinishGang(bool kill) {
  if (!gang_active_) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t w = 0; w < slots_.size(); ++w) {
    Slot& slot = slots_[w];
    if (slot.channel != nullptr) {
      slot.stats.wire_bytes_sent += slot.channel->bytes_sent();
      slot.stats.wire_bytes_received += slot.channel->bytes_received();
      // Closing the coordinator end unblocks a worker stuck reading, so a
      // non-killed reap below cannot hang on a confused child.
      slot.channel.reset();
    }
    if (slot.pid <= 0) continue;
    int status = 0;
    pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
    if (reaped == slot.pid) {
      // Died on its own before we got here: abnormal unless a clean exit 0.
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        slot.needs_restart = true;
      }
    } else {
      if (kill) ::kill(slot.pid, SIGKILL);
      ::waitpid(slot.pid, &status, 0);
      // A deliberate SIGKILL from the coordinator is not a worker failure;
      // without `kill`, any unclean exit is.
      if (!kill && (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
        slot.needs_restart = true;
      }
    }
    slot.pid = -1;
  }
  gang_active_ = false;
}

void WorkerPool::NoteTasksCompleted(int w, int64_t tasks) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_[static_cast<size_t>(w)].stats.tasks += tasks;
}

int64_t WorkerPool::PlanKillInjection(int64_t knob, int64_t assigned_tasks) {
  if (knob <= 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  int64_t die_after = 0;
  if (!injection_fired_ && injection_assigned_total_ < knob &&
      knob <= injection_assigned_total_ + assigned_tasks) {
    die_after = knob - injection_assigned_total_;
    injection_fired_ = true;
  }
  injection_assigned_total_ += assigned_tasks;
  return die_after;
}

std::vector<WorkerStats> WorkerPool::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerStats> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    WorkerStats s = slot.stats;
    // Fold in the live gang's traffic so a snapshot taken mid-run (or after
    // a run whose channels are still open) is not behind.
    if (slot.channel != nullptr) {
      s.wire_bytes_sent += slot.channel->bytes_sent();
      s.wire_bytes_received += slot.channel->bytes_received();
    }
    out.push_back(s);
  }
  return out;
}

}  // namespace distributed
}  // namespace haten2
