#include "distributed/wire.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cstring>

#include "util/string_util.h"

namespace haten2 {
namespace distributed {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

template <typename T>
void AppendRaw(const T& v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadRaw(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void EncodeFrameBytes(const WireFrame& frame, std::string* out) {
  AppendRaw(kWireMagic, out);
  AppendRaw(kWireVersion, out);
  AppendRaw(static_cast<uint16_t>(frame.type), out);
  AppendRaw(frame.worker, out);
  AppendRaw(frame.job, out);
  AppendRaw(frame.a, out);
  AppendRaw(frame.b, out);
  AppendRaw(static_cast<uint32_t>(frame.payload.size()), out);
  AppendRaw(Crc32(frame.payload.data(), frame.payload.size()), out);
  out->append(frame.payload);
}

WireChannel::WireChannel(int fd, std::string peer)
    : fd_(fd), peer_(std::move(peer)) {}

WireChannel::~WireChannel() { Close(); }

void WireChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WireChannel::WriteExact(const char* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::send(fd_, buf + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat(
          "wire: write to %s failed at byte offset %llu: %s", peer_.c_str(),
          static_cast<unsigned long long>(bytes_sent_ + done),
          std::strerror(errno)));
    }
    done += static_cast<size_t>(w);
  }
  bytes_sent_ += n;
  return Status::OK();
}

Status WireChannel::WriteFrame(const WireFrame& frame) {
  if (fd_ < 0) {
    return Status::IOError("wire: channel to " + peer_ + " is closed");
  }
  std::string bytes;
  bytes.reserve(kWireHeaderBytes + frame.payload.size());
  EncodeFrameBytes(frame, &bytes);
  return WriteExact(bytes.data(), bytes.size());
}

Status WireChannel::ReadExact(char* buf, size_t n, double timeout_seconds,
                              uint64_t frame_offset) {
  size_t done = 0;
  while (done < n) {
    if (timeout_seconds > 0.0) {
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      int timeout_ms = static_cast<int>(timeout_seconds * 1000.0);
      if (timeout_ms < 1) timeout_ms = 1;
      int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(StrFormat(
            "wire: poll on %s failed at byte offset %llu: %s", peer_.c_str(),
            static_cast<unsigned long long>(bytes_received_ + done),
            std::strerror(errno)));
      }
      if (ready == 0) {
        return Status::IOError(StrFormat(
            "wire: read from %s timed out after %.3fs at byte offset %llu",
            peer_.c_str(), timeout_seconds,
            static_cast<unsigned long long>(bytes_received_ + done)));
      }
    }
    ssize_t r = ::recv(fd_, buf + done, n - done, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat(
          "wire: read from %s failed at byte offset %llu: %s", peer_.c_str(),
          static_cast<unsigned long long>(bytes_received_ + done),
          std::strerror(errno)));
    }
    if (r == 0) {
      // EOF: the peer closed (or died) mid-frame or between frames.
      const char* what = (done == 0 && frame_offset == 0)
                             ? "connection closed by"
                             : "truncated frame from";
      return Status::IOError(StrFormat(
          "wire: %s %s at byte offset %llu", what, peer_.c_str(),
          static_cast<unsigned long long>(bytes_received_ + done)));
    }
    done += static_cast<size_t>(r);
  }
  bytes_received_ += n;
  return Status::OK();
}

Status WireChannel::ReadFrame(double timeout_seconds, WireFrame* out) {
  if (fd_ < 0) {
    return Status::IOError("wire: channel to " + peer_ + " is closed");
  }
  const uint64_t header_offset = bytes_received_;
  char header[kWireHeaderBytes];
  HATEN2_RETURN_IF_ERROR(
      ReadExact(header, kWireHeaderBytes, timeout_seconds, 0));

  size_t pos = 0;
  auto take = [&header, &pos](auto* v) {
    std::memcpy(v, header + pos, sizeof(*v));
    pos += sizeof(*v);
  };
  uint32_t magic;
  uint16_t version;
  uint16_t type;
  uint32_t payload_len;
  uint32_t crc;
  take(&magic);
  take(&version);
  take(&type);
  take(&out->worker);
  take(&out->job);
  take(&out->a);
  take(&out->b);
  take(&payload_len);
  take(&crc);

  if (magic != kWireMagic) {
    return Status::IOError(StrFormat(
        "wire: bad magic 0x%08x (want 0x%08x) from %s at byte offset %llu",
        magic, kWireMagic, peer_.c_str(),
        static_cast<unsigned long long>(header_offset)));
  }
  if (version != kWireVersion) {
    return Status::IOError(StrFormat(
        "wire: unsupported protocol version %u (want %u) from %s at byte "
        "offset %llu",
        version, kWireVersion, peer_.c_str(),
        static_cast<unsigned long long>(header_offset)));
  }
  if (type < static_cast<uint16_t>(FrameType::kAssignment) ||
      type > static_cast<uint16_t>(FrameType::kWorkerDone)) {
    return Status::IOError(StrFormat(
        "wire: unknown frame type %u from %s at byte offset %llu", type,
        peer_.c_str(), static_cast<unsigned long long>(header_offset)));
  }
  if (payload_len > kMaxWirePayloadBytes) {
    return Status::IOError(StrFormat(
        "wire: oversized payload length %u (limit %u) from %s at byte "
        "offset %llu",
        payload_len, kMaxWirePayloadBytes, peer_.c_str(),
        static_cast<unsigned long long>(header_offset)));
  }
  out->type = static_cast<FrameType>(type);
  out->payload.resize(payload_len);
  if (payload_len > 0) {
    HATEN2_RETURN_IF_ERROR(ReadExact(out->payload.data(), payload_len,
                                     timeout_seconds, kWireHeaderBytes));
  }
  uint32_t actual = Crc32(out->payload.data(), out->payload.size());
  if (actual != crc) {
    return Status::IOError(StrFormat(
        "wire: payload CRC mismatch (got 0x%08x, want 0x%08x) from %s at "
        "byte offset %llu",
        actual, crc, peer_.c_str(),
        static_cast<unsigned long long>(header_offset)));
  }
  return Status::OK();
}

Status MakeSocketPair(int* first_fd, int* second_fd) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IOError(StrFormat("wire: socketpair failed: %s",
                                     std::strerror(errno)));
  }
  *first_fd = fds[0];
  *second_fd = fds[1];
  return Status::OK();
}

}  // namespace distributed
}  // namespace haten2
