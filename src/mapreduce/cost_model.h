#ifndef HATEN2_MAPREDUCE_COST_MODEL_H_
#define HATEN2_MAPREDUCE_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/stats.h"

namespace haten2 {

/// \brief Speculative-execution counters from one simulated task phase, job,
/// or pipeline (summed): how many backup copies were launched, how many
/// finished before their primary, and the simulated seconds spent on copies
/// that were killed (the price of speculation).
struct SpeculationStats {
  int64_t speculated = 0;
  int64_t won = 0;
  double wasted_seconds = 0.0;

  void Add(const SpeculationStats& o) {
    speculated += o.speculated;
    won += o.won;
    wasted_seconds += o.wasted_seconds;
  }
};

/// \brief One task's work as the slot simulation sees it: the CPU+disk cost
/// of a single successful attempt, split so re-execution can be charged on
/// CPU only (a failed attempt never reached the spill path — failure
/// injection decides attempts before any work runs), plus the attempt count
/// the engine measured.
struct TaskWork {
  /// Seconds of per-attempt work on the reference machine (CPU per record).
  double cpu_once = 0.0;
  /// Seconds of once-only disk traffic on the reference machine (spill
  /// writes for map tasks, partition I/O for reduce tasks).
  double disk_once = 0.0;
  /// Execution attempts (>= 1); attempts - 1 re-executions are charged
  /// cpu_once each, scaled by the hosting machine's failure_multiplier.
  int attempts = 1;
};

/// Result of simulating one task phase (map or reduce).
struct PhaseSim {
  double seconds = 0.0;
  SpeculationStats speculation;
};

/// Result of simulating one job: startup + map phase + shuffle + reduce
/// phase, with the phases' speculation counters summed.
struct JobSim {
  double seconds = 0.0;
  SpeculationStats speculation;
};

/// Result of simulating a pipeline (serialized jobs + retry backoff).
struct PipelineSim {
  double seconds = 0.0;
  SpeculationStats speculation;
};

/// \brief Converts measured job counters into the makespan the same job
/// would have on a ClusterConfig-sized Hadoop cluster.
///
/// This is the substitution for the paper's 40-machine testbed (DESIGN.md):
/// the in-process engine measures *what* each job moved and computed (records
/// per map task, records/bytes per reduce partition); the cost model
/// schedules those tasks onto M machines and adds the fixed per-job startup
/// overhead. Because startup does not shrink with M while the work terms do,
/// the simulated scale-up T_10/T_M flattens as machines are added — the
/// behaviour of Figure 8.
///
/// Scheduling is an event-driven slot simulation: each of the M machines
/// contributes its configured slots, tasks are dispatched longest-first onto
/// the fastest idle slot, and task durations are scaled by the hosting
/// machine's MachineProfile (plus optional seeded jitter). On a uniform
/// cluster with speculation off this reduces exactly — bit-for-bit — to the
/// greedy-LPT `Makespan` list schedule the model historically used (kept
/// below as the reference implementation). With `speculative_execution` on,
/// stragglers get Hadoop-style backup copies on idle slots; see
/// docs/OPERATIONS.md for tuning.
class CostModel {
 public:
  explicit CostModel(const ClusterConfig& config) : config_(config) {}

  /// Simulated seconds for one job on the configured cluster.
  double SimulateJob(const JobStats& stats) const;

  /// SimulateJob plus the job's speculation counters.
  JobSim SimulateJobDetailed(const JobStats& stats) const;

  /// Simulated seconds for a job sequence (jobs are serialized on Hadoop:
  /// each waits for the previous to finish).
  double SimulatePipeline(const PipelineStats& stats) const;

  /// SimulatePipeline plus speculation counters summed over the jobs.
  PipelineSim SimulatePipelineDetailed(const PipelineStats& stats) const;

  /// Event-driven simulation of one task phase over
  /// num_machines * slots_per_machine slots carrying the configured machine
  /// profiles. `salt` keys the per-task jitter draws (distinct per job and
  /// phase so map and reduce jitter independently); identical inputs are
  /// bit-reproducible. Exposed for testing.
  PhaseSim SimulateTaskPhase(const std::vector<TaskWork>& tasks,
                             int slots_per_machine, uint64_t salt) const;

  /// Upper-bound estimate of the memory an in-core compressed contraction
  /// layout (linalg/sparse_kernels.h CsfLayout) of an nnz-entry tensor with
  /// `num_streams` contracted modes would occupy, in bytes. Pure arithmetic
  /// on purpose — the mapreduce layer never sees tensors — sized for the
  /// worst case where every entry is its own fiber and slice:
  /// value + inner index (16 B/entry), fiber offsets + outer coords
  /// (8 * num_streams B/entry), slice ids + offsets (16 B/entry), plus a
  /// fixed slack for the struct and array headers. The `auto` contraction
  /// policy compares this against incore_memory_mb.
  static uint64_t EstimateInCoreLayoutBytes(int64_t nnz, int num_streams);

  /// Greedy longest-processing-time makespan of `task_costs` on `workers`
  /// parallel workers — the historical uniform-cluster model, kept as the
  /// reference the slot simulation must match bit-for-bit on uniform
  /// profiles with speculation off (asserted in tests).
  static double Makespan(std::vector<double> task_costs, int workers);

 private:
  ClusterConfig config_;
};

}  // namespace haten2

#endif  // HATEN2_MAPREDUCE_COST_MODEL_H_
