#ifndef HATEN2_MAPREDUCE_COST_MODEL_H_
#define HATEN2_MAPREDUCE_COST_MODEL_H_

#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/stats.h"

namespace haten2 {

/// \brief Converts measured job counters into the makespan the same job
/// would have on a ClusterConfig-sized Hadoop cluster.
///
/// This is the substitution for the paper's 40-machine testbed (DESIGN.md):
/// the in-process engine measures *what* each job moved and computed (records
/// per map task, records/bytes per reduce partition); the cost model
/// schedules those tasks onto M machines and adds the fixed per-job startup
/// overhead. Because startup does not shrink with M while the work terms do,
/// the simulated scale-up T_10/T_M flattens as machines are added — the
/// behaviour of Figure 8.
class CostModel {
 public:
  explicit CostModel(const ClusterConfig& config) : config_(config) {}

  /// Simulated seconds for one job on the configured cluster.
  double SimulateJob(const JobStats& stats) const;

  /// Simulated seconds for a job sequence (jobs are serialized on Hadoop:
  /// each waits for the previous to finish).
  double SimulatePipeline(const PipelineStats& stats) const;

  /// Greedy longest-processing-time makespan of `task_costs` on `workers`
  /// parallel workers. Exposed for testing.
  static double Makespan(std::vector<double> task_costs, int workers);

 private:
  ClusterConfig config_;
};

}  // namespace haten2

#endif  // HATEN2_MAPREDUCE_COST_MODEL_H_
