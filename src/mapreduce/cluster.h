#ifndef HATEN2_MAPREDUCE_CLUSTER_H_
#define HATEN2_MAPREDUCE_CLUSTER_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "mapreduce/spill_codec.h"
#include "util/result.h"

namespace haten2 {

/// \brief Performance profile of one simulated machine.
///
/// Real Hadoop clusters are heterogeneous — mixed hardware generations,
/// noisy neighbours, degraded disks — and per-machine speed differences are
/// the first-order cause of stragglers. The CostModel's slot simulation
/// places tasks on machines carrying these profiles.
struct MachineProfile {
  /// Relative execution speed: a task whose uniform-cluster cost is c
  /// seconds takes c / speed_factor on this machine. 1.0 = the paper's
  /// reference machine; 0.5 = half speed. Must be > 0.
  double speed_factor = 1.0;

  /// Scales the re-execution CPU charged for this machine's failed task
  /// attempts: a task with k attempts costs
  /// once * (1 + (k - 1) * failure_multiplier) here. > 1 models machines
  /// whose retries are disproportionately expensive (thermal throttling,
  /// failing disks); 0 makes retries free on this machine. Must be >= 0.
  double failure_multiplier = 1.0;
};

/// Parses a machine-profile list: comma-separated entries of the form
/// `SPEED`, `SPEEDxCOUNT`, or `SPEEDxCOUNT@FAILMULT` — e.g.
/// "1.0x30,0.5x10@2.0" is 30 reference machines plus 10 half-speed machines
/// whose retries cost double. COUNT defaults to 1, FAILMULT to 1.0.
Result<std::vector<MachineProfile>> ParseMachineProfiles(
    const std::string& spec);

/// \brief Configuration of the (simulated) MapReduce cluster.
///
/// The engine executes jobs in-process using `num_threads` workers; the
/// remaining fields parameterize the CostModel which converts measured task
/// work into the makespan the same job would have on a `num_machines`-node
/// Hadoop cluster (see DESIGN.md, substitution table). Defaults model the
/// paper's testbed: 40 machines, quad-core Xeon E3, 32 GB RAM each.
struct ClusterConfig {
  /// Simulated cluster size (paper: 10-40 machines).
  int num_machines = 40;

  /// Concurrent map / reduce tasks per machine (paper machines: quad-core).
  int map_slots_per_machine = 4;
  int reduce_slots_per_machine = 4;

  /// Real execution threads for the in-process engine.
  int num_threads = 1;

  /// Maximum MapReduce jobs a PlanScheduler runs concurrently when a plan
  /// contains independent nodes (e.g. HaTen2-DRN's per-(stream, column)
  /// Hadamard jobs). 1 executes plans serially in node order — exactly the
  /// legacy eager-Run sequence. Values > 1 overlap independent jobs on the
  /// engine's thread pool; note the shuffle-memory budget is shared, so
  /// concurrent jobs can together exhaust a budget each would fit alone.
  int max_concurrent_jobs = 1;

  /// Number of map tasks a job's input is split into; 0 = one per map slot.
  int num_map_tasks = 0;

  /// Number of reduce partitions; 0 = one per reduce slot.
  int num_reduce_tasks = 0;

  /// Fixed per-job overhead (JVM startup, job scheduling, synchronization).
  /// This is what makes many-job variants (Naive/DNN/DRN) slow and makes the
  /// Fig. 8 scale-up flatten: it does not shrink with more machines.
  double job_startup_seconds = 8.0;

  /// Per-record CPU costs for the simulated cluster.
  double map_seconds_per_record = 1.0e-6;
  double reduce_seconds_per_record = 1.0e-6;

  /// Per-machine shuffle (network) and spill (disk) bandwidth.
  double network_bytes_per_second = 100.0e6;
  double disk_bytes_per_second = 200.0e6;

  /// Aggregate memory for in-flight intermediate (shuffle) data across the
  /// simulated cluster. Exceeding it fails a job with kResourceExhausted,
  /// reported as "o.o.m." in the benchmark harnesses.
  /// 0 means unlimited.
  uint64_t total_shuffle_memory_bytes = 0;

  /// Shuffle spilling (Hadoop's sort-spill): when `spill_directory` is
  /// non-empty, a map task writes a partition's buffered records to a spill
  /// file once it holds `spill_threshold_records`, bounding the task's
  /// *resident* memory; the reduce phase streams the spills back. Spilled
  /// records still count against total_shuffle_memory_bytes — the budget
  /// models the cluster's total intermediate-data capacity (RAM and local
  /// disks together), which is what the paper's o.o.m. events exhaust.
  std::string spill_directory;
  int64_t spill_threshold_records = 64 * 1024;

  /// On-disk encoding of spill runs (mapreduce/spill_codec.h). `kNone`
  /// writes raw records — byte-for-byte the historical format, kept as the
  /// deterministic test double; `kDeltaVarint` block-compresses each run
  /// (delta+varint on a sorted key prefix, values raw). Budget charges and
  /// the `spilled_bytes`/`spilled_raw_bytes` counters always use the raw
  /// record width; `spilled_compressed_bytes` and the CostModel's disk term
  /// use what actually reached disk.
  SpillCompression spill_compression = SpillCompression::kNone;

  /// Failure injection for the spill *write* path: when > 0, the spill
  /// write that would push an emitter's cumulative spill-file bytes past
  /// this limit fails partway through (a torn write, as a full disk
  /// produces), exercising the torn-file cleanup. 0 disables. Deterministic
  /// like task_failure_probability: reruns tear at the same byte.
  int64_t inject_spill_failure_after_bytes = 0;

  /// Failure injection: probability that each map-task attempt fails and is
  /// re-executed, as Hadoop does with crashed tasks. Attempts are decided
  /// deterministically from failure_seed, so runs are reproducible, and a
  /// re-executed task re-emits exactly the same records — job output is
  /// invariant under retries (asserted in tests). A task failing
  /// max_task_attempts times in a row fails the whole job with kAborted.
  double task_failure_probability = 0.0;
  int max_task_attempts = 4;
  uint64_t failure_seed = 0xfa11u;

  /// Plan-level recovery (mapreduce/scheduler.h): how many times the
  /// PlanScheduler runs one plan node end-to-end before giving up, counting
  /// the first attempt. 1 disables node retries (any failure is final —
  /// the pre-recovery behaviour). Only *transient* failures are retried:
  /// kAborted (a job exhausted its task attempts) and kIOError; permanent
  /// statuses (bad input, contract violations) fail immediately.
  int max_node_attempts = 1;

  /// Whether kResourceExhausted ("o.o.m.") counts as transient for node
  /// retries. Off by default: re-running an o.o.m. node under the same
  /// shuffle-memory budget fails identically; turn this on only when the
  /// budget was raised between attempts (e.g. by an external controller).
  bool retry_oom_nodes = false;

  /// Simulated backoff before the k-th node retry:
  /// min(base * multiplier^(k-1), cap) seconds. Backoff is *simulated
  /// cluster time* — recorded in PlanNodeStats::backoff_seconds and added
  /// to the CostModel's pipeline makespan, never slept for real (the
  /// in-process engine has no contended resource worth waiting out).
  double node_backoff_base_seconds = 4.0;
  double node_backoff_multiplier = 2.0;
  double node_backoff_cap_seconds = 64.0;

  /// Per-machine performance profiles for the CostModel's slot simulation.
  /// Empty = uniform cluster (every machine is the paper's reference
  /// machine). Non-empty lists are applied cyclically: machine m uses
  /// machine_profiles[m % machine_profiles.size()], so one list describes
  /// the heterogeneity mix across any simulated cluster size (the Fig. 8
  /// sweep re-simulates M = 10..40 from a single profile list).
  std::vector<MachineProfile> machine_profiles;

  /// Hadoop-style speculative execution in the CostModel simulation: when a
  /// running task's expected remaining time exceeds speculation_slowstart
  /// times the median duration of already-finished tasks in the same phase,
  /// a backup copy is launched on the fastest idle slot; whichever copy
  /// finishes first wins and the other is killed. Affects simulated time
  /// only — decomposition results are computed by the engine and never
  /// change. Off by default (the paper's baseline cluster).
  bool speculative_execution = false;

  /// Slowstart threshold for launching a backup task, as a multiple of the
  /// median finished-task duration. Hadoop's default heuristic is roughly
  /// "1.2x slower than average"; we default a bit more conservative. Must
  /// be > 0. Lower values speculate eagerly (more wasted backup work),
  /// higher values only rescue extreme stragglers.
  double speculation_slowstart = 1.5;

  /// Contraction execution strategy (core/contraction_strategy.h):
  /// "dataflow" always evaluates the bottleneck op as the paper's MapReduce
  /// job pipeline (the default — the variant tables' job counts hold
  /// exactly); "incore" forces the DFacTo-style compressed-layout kernels
  /// (one plan node, no shuffle); "auto" picks per plan node — in-core when
  /// CostModel::EstimateInCoreLayoutBytes fits incore_memory_mb, dataflow
  /// otherwise.
  std::string contraction = "dataflow";

  /// Per-node memory budget (MiB) the `auto` contraction policy allows for
  /// an in-core compressed layout. Must be >= 1. Sized to one worker's RAM
  /// share, not the whole cluster: the layout lives in a single process.
  int64_t incore_memory_mb = 1024;

  /// Randomized (sketched) Tucker HOOI (core/sketched_tucker.h): "none"
  /// keeps the exact per-mode SVD; "gaussian" / "countsketch" select the
  /// projection family the sketched driver compresses the contracted factor
  /// columns with. The CLI routes --method=tucker through the sketched
  /// driver whenever this is not "none". Never affects the exact drivers.
  std::string tucker_sketch = "none";

  /// Sketch dimension s: the column count the contracted factor space is
  /// projected down to before the merge jobs run. 0 = auto (the largest
  /// core dimension plus a small oversampling margin); explicit values must
  /// be >= the largest core dimension, which the driver checks (the config
  /// does not know the core dims). Must be >= 0.
  int64_t sketch_size = 0;

  /// Exact HOOI sweeps appended at the end of a sketched run to recover the
  /// accuracy the projections gave up (the randomized-Tucker papers'
  /// "polish" step). Must be >= 0; 0 runs sketched sweeps only.
  int exact_polish_sweeps = 2;

  /// Execution backend behind the Engine API: "inprocess" runs map tasks
  /// and reduce partitions on the engine's thread pool (the default);
  /// "subprocess" forks EffectiveNumWorkers() local worker processes and
  /// shards tasks/partitions over Unix-domain sockets
  /// (distributed/subprocess_job.h). Both backends produce bit-identical
  /// output for the same configuration and seeds.
  std::string backend = "inprocess";

  /// Worker processes for the subprocess backend; 0 derives the count from
  /// num_threads. Ignored by the inprocess backend.
  int num_workers = 0;

  /// Seconds a coordinator<->worker socket read may block before the job is
  /// failed as "worker_lost" (a hung worker must not hang the driver).
  /// Must be > 0.
  double worker_io_timeout_seconds = 120.0;

  /// Failure injection for the subprocess backend: the worker whose
  /// cumulative assigned map-task count first reaches this value _exit()s
  /// after completing that many tasks of its assignment — a deterministic
  /// worker crash. One-shot per engine (the injection latches), so the node
  /// retry that follows converges. 0 disables.
  int64_t inject_worker_kill_after_tasks = 0;

  /// Maximum fractional per-task latency jitter in the slot simulation: each
  /// task copy's duration is scaled by 1 + straggler_jitter * u with
  /// u ~ U[0,1) drawn deterministically from straggler_jitter_seed and the
  /// (job, phase, task, copy) identity, so identical configs are
  /// bit-reproducible. 0 (default) disables jitter entirely — durations are
  /// exactly the profile-scaled task costs.
  double straggler_jitter = 0.0;
  uint64_t straggler_jitter_seed = 0x57a6u;

  /// Profile of simulated machine m (cyclic; uniform reference profile when
  /// machine_profiles is empty).
  MachineProfile ProfileOf(int machine) const {
    if (machine_profiles.empty()) return MachineProfile{};
    return machine_profiles[static_cast<size_t>(machine) %
                            machine_profiles.size()];
  }

  /// Checks every field for values that would make the engine or the
  /// CostModel produce nonsense (Inf/NaN simulated seconds, division by
  /// zero, empty slot pools). Returns kInvalidArgument naming the offending
  /// field. Called by the Engine constructor (fail-fast on first Run) and
  /// by haten2_cli before constructing anything.
  Status Validate() const;

  int TotalMapSlots() const { return num_machines * map_slots_per_machine; }
  int TotalReduceSlots() const {
    return num_machines * reduce_slots_per_machine;
  }
  int EffectiveMapTasks() const {
    return num_map_tasks > 0 ? num_map_tasks : TotalMapSlots();
  }
  int EffectiveReduceTasks() const {
    return num_reduce_tasks > 0 ? num_reduce_tasks : TotalReduceSlots();
  }
  /// Worker-process count of the subprocess backend.
  int EffectiveNumWorkers() const {
    return num_workers > 0 ? num_workers : std::max(1, num_threads);
  }

  /// A small configuration suitable for unit tests: 4 machines, 1 slot each,
  /// negligible startup.
  static ClusterConfig ForTesting() {
    ClusterConfig c;
    c.num_machines = 4;
    c.map_slots_per_machine = 1;
    c.reduce_slots_per_machine = 1;
    c.num_threads = 2;
    c.job_startup_seconds = 0.0;
    return c;
  }
};

}  // namespace haten2

#endif  // HATEN2_MAPREDUCE_CLUSTER_H_
