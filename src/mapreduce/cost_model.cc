#include "mapreduce/cost_model.h"

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <queue>

#include "mapreduce/hash.h"

namespace haten2 {

namespace {

// 53-bit uniform in [0, 1) from a mixed hash — the same construction the
// engine's failure injection uses (engine.h, ShouldFailAttempt).
double UniformFromHash(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

struct Slot {
  int id = 0;
  double speed = 1.0;
  double failure_multiplier = 1.0;
  bool busy = false;
};

// One running (or finished/killed) execution of a task: the primary copy, or
// the speculative backup.
struct Copy {
  int task = -1;
  int slot = -1;
  double start = 0.0;
  double finish = 0.0;
  bool backup = false;
  bool dead = false;
};

struct Event {
  double time = 0.0;
  int copy = -1;
  // Min-heap order; ties broken by copy id so the event sequence is fully
  // deterministic.
  bool operator>(const Event& o) const {
    if (time != o.time) return time > o.time;
    return copy > o.copy;
  }
};

// Lower median (no averaging, so threshold comparisons stay exact in tests).
double LowerMedian(std::vector<double> v) {
  size_t mid = (v.size() - 1) / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

}  // namespace

uint64_t CostModel::EstimateInCoreLayoutBytes(int64_t nnz, int num_streams) {
  if (nnz < 0) nnz = 0;
  if (num_streams < 1) num_streams = 1;
  const uint64_t per_entry =
      16 +                                        // value + inner index
      8 * static_cast<uint64_t>(num_streams) +    // fiber offset + outer coords
      16;                                         // slice id + fiber offset
  return static_cast<uint64_t>(nnz) * per_entry + 4096;
}

double CostModel::Makespan(std::vector<double> task_costs, int workers) {
  if (task_costs.empty()) return 0.0;
  if (workers < 1) workers = 1;
  std::sort(task_costs.begin(), task_costs.end(), std::greater<double>());
  // Min-heap of worker loads.
  std::priority_queue<double, std::vector<double>, std::greater<double>> loads;
  for (int w = 0; w < workers; ++w) loads.push(0.0);
  for (double c : task_costs) {
    double lightest = loads.top();
    loads.pop();
    loads.push(lightest + c);
  }
  double makespan = 0.0;
  while (!loads.empty()) {
    makespan = std::max(makespan, loads.top());
    loads.pop();
  }
  return makespan;
}

PhaseSim CostModel::SimulateTaskPhase(const std::vector<TaskWork>& tasks,
                                      int slots_per_machine,
                                      uint64_t salt) const {
  PhaseSim sim;
  if (tasks.empty()) return sim;

  // Mirror the legacy Makespan clamp: a degenerate config still simulates on
  // one machine with one slot rather than dividing by zero.
  int machines = std::max(1, config_.num_machines);
  int per_machine = std::max(1, slots_per_machine);
  std::vector<Slot> slots;
  slots.reserve(static_cast<size_t>(machines) *
                static_cast<size_t>(per_machine));
  for (int m = 0; m < machines; ++m) {
    MachineProfile p = config_.ProfileOf(m);
    for (int s = 0; s < per_machine; ++s) {
      Slot sl;
      sl.id = static_cast<int>(slots.size());
      sl.speed = p.speed_factor;
      sl.failure_multiplier = p.failure_multiplier;
      slots.push_back(sl);
    }
  }

  // Dispatch order: longest reference-machine duration first (ties by task
  // index). On a uniform cluster this is exactly the LPT list schedule.
  std::vector<int> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> nominal(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    const TaskWork& w = tasks[i];
    nominal[i] =
        w.cpu_once *
            (1.0 + static_cast<double>(std::max(1, w.attempts) - 1) * 1.0) +
        w.disk_once;
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (nominal[a] != nominal[b]) return nominal[a] > nominal[b];
    return a < b;
  });

  // Per-copy latency jitter: deterministic in (seed, salt, task, copy), so
  // identical configs reproduce bit-identical schedules. Exactly 1.0 when
  // jitter is disabled — durations are then pure profile-scaled costs.
  auto jitter = [&](int task, int copy) {
    if (config_.straggler_jitter == 0.0) return 1.0;
    uint64_t h = Mix64(config_.straggler_jitter_seed ^
                       Mix64(salt * 1000003ull +
                             static_cast<uint64_t>(task) * 2ull +
                             static_cast<uint64_t>(copy)));
    return 1.0 + config_.straggler_jitter * UniformFromHash(h);
  };
  // Re-execution is CPU only (failed attempts never spilled — failure
  // injection decides before any work runs), scaled by the hosting
  // machine's failure multiplier; the whole task is scaled by its speed.
  auto duration = [&](const TaskWork& w, const Slot& sl, int task, int copy) {
    double cpu =
        w.cpu_once * (1.0 + static_cast<double>(std::max(1, w.attempts) - 1) *
                                sl.failure_multiplier);
    return (cpu + w.disk_once) / sl.speed * jitter(task, copy);
  };

  std::vector<Copy> copies;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::vector<int> primary(tasks.size(), -1);
  std::vector<int> backup(tasks.size(), -1);
  std::vector<char> done(tasks.size(), 0);
  std::vector<double> finished;  // winning-copy durations, for the median
  size_t next = 0;               // next undispatched entry of `order`

  auto fastest_idle = [&]() {
    int best = -1;
    for (const Slot& sl : slots) {
      if (sl.busy) continue;
      if (best < 0 || sl.speed > slots[best].speed) best = sl.id;
    }
    return best;
  };
  auto launch = [&](int task, int slot_id, double now, bool is_backup) {
    Copy c;
    c.task = task;
    c.slot = slot_id;
    c.start = now;
    c.backup = is_backup;
    c.finish =
        now + duration(tasks[task], slots[slot_id], task, is_backup ? 1 : 0);
    slots[slot_id].busy = true;
    int cid = static_cast<int>(copies.size());
    copies.push_back(c);
    (is_backup ? backup : primary)[task] = cid;
    events.push(Event{c.finish, cid});
  };
  auto dispatch = [&](double now) {
    // Pending primaries always outrank speculation for slots.
    while (next < order.size()) {
      int slot_id = fastest_idle();
      if (slot_id < 0) return;
      launch(order[next++], slot_id, now, false);
    }
    if (!config_.speculative_execution || finished.empty()) return;
    // Backup the worst straggler: the running primary (without a backup)
    // whose expected remaining time most exceeds slowstart x the median
    // finished duration. Backups only ever use otherwise-idle slots, so
    // speculation can never increase the makespan in this model.
    double threshold = config_.speculation_slowstart * LowerMedian(finished);
    while (true) {
      int slot_id = fastest_idle();
      if (slot_id < 0) return;
      int victim = -1;
      double victim_remaining = 0.0;
      for (size_t t = 0; t < tasks.size(); ++t) {
        if (done[t] || primary[t] < 0 || backup[t] >= 0) continue;
        double remaining = copies[static_cast<size_t>(primary[t])].finish - now;
        if (remaining > threshold &&
            (victim < 0 || remaining > victim_remaining)) {
          victim = static_cast<int>(t);
          victim_remaining = remaining;
        }
      }
      if (victim < 0) return;
      launch(victim, slot_id, now, true);
      ++sim.speculation.speculated;
    }
  };

  double makespan = 0.0;
  dispatch(0.0);
  while (!events.empty()) {
    Event e = events.top();
    events.pop();
    if (copies[static_cast<size_t>(e.copy)].dead) continue;  // killed copy
    Copy c = copies[static_cast<size_t>(e.copy)];
    double now = e.time;
    slots[static_cast<size_t>(c.slot)].busy = false;
    done[static_cast<size_t>(c.task)] = 1;
    finished.push_back(c.finish - c.start);
    if (c.backup) ++sim.speculation.won;
    // Kill-on-first-finish: the losing sibling stops now, freeing its slot;
    // the time it ran is the speculation waste.
    int other = c.backup ? primary[static_cast<size_t>(c.task)]
                         : backup[static_cast<size_t>(c.task)];
    if (other >= 0) {
      Copy& loser = copies[static_cast<size_t>(other)];
      loser.dead = true;
      slots[static_cast<size_t>(loser.slot)].busy = false;
      sim.speculation.wasted_seconds += now - loser.start;
    }
    primary[static_cast<size_t>(c.task)] = -1;
    backup[static_cast<size_t>(c.task)] = -1;
    makespan = std::max(makespan, now);
    dispatch(now);
  }
  sim.seconds = makespan;
  return sim;
}

JobSim CostModel::SimulateJobDetailed(const JobStats& stats) const {
  JobSim sim;
  // Distinct jitter streams per job and per phase (map = salt, reduce =
  // salt + 1).
  uint64_t salt = static_cast<uint64_t>(stats.job_id + 1) * 2ull;

  // Map tasks: CPU per record plus the disk time of the bytes the task
  // actually spilled (post-codec width). An in-memory shuffle spills
  // nothing and pays no disk bandwidth. Re-executed attempts are charged
  // CPU only: failure injection fails an attempt before any work runs, so a
  // failed attempt never reached the spill path (the historical model
  // multiplied the disk term by the attempt count too).
  std::vector<TaskWork> map_tasks;
  map_tasks.reserve(stats.map_task_records.size());
  for (size_t t = 0; t < stats.map_task_records.size(); ++t) {
    TaskWork w;
    w.cpu_once = static_cast<double>(stats.map_task_records[t]) *
                 config_.map_seconds_per_record;
    w.disk_once = (t < stats.map_task_spilled_bytes.size()
                       ? static_cast<double>(stats.map_task_spilled_bytes[t])
                       : 0.0) /
                  config_.disk_bytes_per_second;
    w.attempts = t < stats.map_task_attempts.size()
                     ? std::max(1, stats.map_task_attempts[t])
                     : 1;
    map_tasks.push_back(w);
  }
  PhaseSim map_sim =
      SimulateTaskPhase(map_tasks, config_.map_slots_per_machine, salt);

  // Shuffle: aggregate bytes across the cluster's aggregate bandwidth.
  double shuffle_time =
      static_cast<double>(stats.map_output_bytes) /
      (config_.network_bytes_per_second *
       static_cast<double>(std::max(1, config_.num_machines)));

  // Reduce partitions: CPU per received record plus partition I/O. The
  // engine injects failures on map attempts only, so reduce tasks run once.
  std::vector<TaskWork> reduce_tasks;
  reduce_tasks.reserve(stats.reduce_partition_records.size());
  for (size_t p = 0; p < stats.reduce_partition_records.size(); ++p) {
    TaskWork w;
    w.cpu_once = static_cast<double>(stats.reduce_partition_records[p]) *
                 config_.reduce_seconds_per_record;
    w.disk_once = (p < stats.reduce_partition_bytes.size()
                       ? static_cast<double>(stats.reduce_partition_bytes[p])
                       : 0.0) /
                  config_.disk_bytes_per_second;
    reduce_tasks.push_back(w);
  }
  PhaseSim reduce_sim = SimulateTaskPhase(
      reduce_tasks, config_.reduce_slots_per_machine, salt + 1);

  sim.seconds = config_.job_startup_seconds + map_sim.seconds + shuffle_time +
                reduce_sim.seconds;
  sim.speculation = map_sim.speculation;
  sim.speculation.Add(reduce_sim.speculation);
  return sim;
}

double CostModel::SimulateJob(const JobStats& stats) const {
  return SimulateJobDetailed(stats).seconds;
}

PipelineSim CostModel::SimulatePipelineDetailed(
    const PipelineStats& stats) const {
  PipelineSim sim;
  for (const JobStats& j : stats.jobs) {
    JobSim job = SimulateJobDetailed(j);
    sim.seconds += job.seconds;
    sim.speculation.Add(job.speculation);
  }
  // Plan-level retry backoff is simulated cluster time: the in-process
  // engine never sleeps it, so it is charged here, where the retried jobs'
  // costs already accrued (each attempt's jobs appear in `jobs`).
  sim.seconds += stats.TotalNodeBackoffSeconds();
  return sim;
}

double CostModel::SimulatePipeline(const PipelineStats& stats) const {
  return SimulatePipelineDetailed(stats).seconds;
}

}  // namespace haten2
