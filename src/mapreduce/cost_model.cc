#include "mapreduce/cost_model.h"

#include <algorithm>
#include <queue>

namespace haten2 {

double CostModel::Makespan(std::vector<double> task_costs, int workers) {
  if (task_costs.empty()) return 0.0;
  if (workers < 1) workers = 1;
  std::sort(task_costs.begin(), task_costs.end(), std::greater<double>());
  // Min-heap of worker loads.
  std::priority_queue<double, std::vector<double>, std::greater<double>> loads;
  for (int w = 0; w < workers; ++w) loads.push(0.0);
  for (double c : task_costs) {
    double lightest = loads.top();
    loads.pop();
    loads.push(lightest + c);
  }
  double makespan = 0.0;
  while (!loads.empty()) {
    makespan = std::max(makespan, loads.top());
    loads.pop();
  }
  return makespan;
}

double CostModel::SimulateJob(const JobStats& stats) const {
  // Map tasks: CPU per record plus the disk time of the bytes the task
  // actually spilled (post-codec width). An in-memory shuffle spills
  // nothing and pays no disk bandwidth; the historical model charged every
  // task its share of map_output_bytes even with spilling disabled.
  std::vector<double> map_costs;
  map_costs.reserve(stats.map_task_records.size());
  for (size_t t = 0; t < stats.map_task_records.size(); ++t) {
    int64_t records = stats.map_task_records[t];
    double spill_bytes =
        t < stats.map_task_spilled_bytes.size()
            ? static_cast<double>(stats.map_task_spilled_bytes[t])
            : 0.0;
    double cost = static_cast<double>(records) *
                      config_.map_seconds_per_record +
                  spill_bytes / config_.disk_bytes_per_second;
    // Failed attempts re-execute the task (failure injection).
    if (t < stats.map_task_attempts.size()) {
      cost *= static_cast<double>(std::max(1, stats.map_task_attempts[t]));
    }
    map_costs.push_back(cost);
  }
  double map_time = Makespan(std::move(map_costs), config_.TotalMapSlots());

  // Shuffle: aggregate bytes across the cluster's aggregate bandwidth.
  double shuffle_time =
      static_cast<double>(stats.map_output_bytes) /
      (config_.network_bytes_per_second *
       static_cast<double>(std::max(1, config_.num_machines)));

  // Reduce partitions: CPU per received record plus partition I/O.
  std::vector<double> reduce_costs;
  reduce_costs.reserve(stats.reduce_partition_records.size());
  for (size_t p = 0; p < stats.reduce_partition_records.size(); ++p) {
    double records =
        static_cast<double>(stats.reduce_partition_records[p]);
    double bytes =
        p < stats.reduce_partition_bytes.size()
            ? static_cast<double>(stats.reduce_partition_bytes[p])
            : 0.0;
    reduce_costs.push_back(records * config_.reduce_seconds_per_record +
                           bytes / config_.disk_bytes_per_second);
  }
  double reduce_time =
      Makespan(std::move(reduce_costs), config_.TotalReduceSlots());

  return config_.job_startup_seconds + map_time + shuffle_time + reduce_time;
}

double CostModel::SimulatePipeline(const PipelineStats& stats) const {
  double total = 0.0;
  for (const JobStats& j : stats.jobs) total += SimulateJob(j);
  // Plan-level retry backoff is simulated cluster time: the in-process
  // engine never sleeps it, so it is charged here, where the retried jobs'
  // costs already accrued (each attempt's jobs appear in `jobs`).
  total += stats.TotalNodeBackoffSeconds();
  return total;
}

}  // namespace haten2
