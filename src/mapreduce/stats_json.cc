#include "mapreduce/stats_json.h"

namespace haten2 {

namespace {

void SkewToJson(const TaskSkew& skew, JsonWriter* w) {
  w->BeginObject()
      .Key("count")
      .Value(skew.tasks)
      .Key("min_records")
      .Value(skew.min_records)
      .Key("p50_records")
      .Value(skew.p50_records)
      .Key("max_records")
      .Value(skew.max_records)
      .EndObject();
}

}  // namespace

void JobStatsToJson(const JobStats& job, const CostModel* cost,
                    JsonWriter* w) {
  w->BeginObject();
  w->Key("name").Value(job.name);
  w->Key("job_id").Value(job.job_id);
  w->Key("plan_id").Value(job.plan_id);
  w->Key("status").Value(job.failed() ? std::string_view(job.failure)
                                      : std::string_view("ok"));
  w->Key("wall_seconds").Value(job.wall_seconds);
  w->Key("phases")
      .BeginObject()
      .Key("map_seconds")
      .Value(job.phases.map_seconds)
      .Key("combine_seconds")
      .Value(job.phases.combine_seconds)
      .Key("shuffle_seconds")
      .Value(job.phases.shuffle_seconds)
      .Key("reduce_seconds")
      .Value(job.phases.reduce_seconds)
      .EndObject();
  w->Key("map")
      .BeginObject()
      .Key("input_records")
      .Value(job.map_input_records)
      .Key("pre_combine_records")
      .Value(job.pre_combine_records)
      .Key("output_records")
      .Value(job.map_output_records)
      .Key("output_bytes")
      .Value(job.map_output_bytes)
      .Key("task_retries")
      .Value(job.map_task_retries)
      .Key("tasks");
  SkewToJson(job.MapTaskSkew(), w);
  w->EndObject();
  // "bytes" keeps its pre-v4 meaning (raw record width); the v4 fields
  // separate raw from on-disk volume. compression_ratio is raw/compressed
  // (>= 1 when the codec wins; 1.0 when nothing spilled).
  double compression_ratio =
      job.spilled_compressed_bytes > 0
          ? static_cast<double>(job.spilled_raw_bytes) /
                static_cast<double>(job.spilled_compressed_bytes)
          : 1.0;
  w->Key("spill")
      .BeginObject()
      .Key("records")
      .Value(job.spilled_records)
      .Key("bytes")
      .Value(job.spilled_bytes)
      .Key("raw_bytes")
      .Value(job.spilled_raw_bytes)
      .Key("compressed_bytes")
      .Value(job.spilled_compressed_bytes)
      .Key("compression_ratio")
      .Value(compression_ratio)
      .EndObject();
  uint64_t reduce_bytes = 0;
  for (uint64_t b : job.reduce_partition_bytes) reduce_bytes += b;
  w->Key("reduce")
      .BeginObject()
      .Key("input_groups")
      .Value(job.reduce_input_groups)
      .Key("output_records")
      .Value(job.reduce_output_records)
      .Key("input_bytes")
      .Value(reduce_bytes)
      .Key("partitions");
  SkewToJson(job.ReducePartitionSkew(), w);
  w->EndObject();
  if (cost != nullptr) {
    JobSim sim = cost->SimulateJobDetailed(job);
    w->Key("simulated_seconds").Value(sim.seconds);
    w->Key("speculation")
        .BeginObject()
        .Key("speculated")
        .Value(sim.speculation.speculated)
        .Key("won")
        .Value(sim.speculation.won)
        .Key("wasted_seconds")
        .Value(sim.speculation.wasted_seconds)
        .EndObject();
  }
  w->EndObject();
}

void PipelineStatsToJson(const PipelineStats& pipeline, const CostModel* cost,
                         JsonWriter* w) {
  w->BeginObject();
  w->Key("num_jobs").Value(pipeline.NumJobs());
  w->Key("failed_jobs").Value(pipeline.NumFailedJobs());
  w->Key("total_wall_seconds").Value(pipeline.TotalWallSeconds());
  w->Key("max_intermediate_records").Value(pipeline.MaxIntermediateRecords());
  w->Key("max_intermediate_bytes").Value(pipeline.MaxIntermediateBytes());
  w->Key("total_intermediate_records")
      .Value(pipeline.TotalIntermediateRecords());
  w->Key("total_intermediate_bytes").Value(pipeline.TotalIntermediateBytes());
  w->Key("total_spilled_records").Value(pipeline.TotalSpilledRecords());
  w->Key("total_spilled_raw_bytes").Value(pipeline.TotalSpilledRawBytes());
  w->Key("total_spilled_compressed_bytes")
      .Value(pipeline.TotalSpilledCompressedBytes());
  w->Key("total_map_task_retries").Value(pipeline.TotalMapTaskRetries());
  w->Key("scheduled_concurrency").Value(pipeline.MaxScheduledConcurrency());
  w->Key("critical_path_seconds").Value(pipeline.TotalCriticalPathSeconds());
  w->Key("critical_path_with_backoff_seconds")
      .Value(pipeline.TotalCriticalPathWithBackoffSeconds());
  w->Key("total_node_seconds").Value(pipeline.TotalPlanNodeSeconds());
  w->Key("node_retries").Value(pipeline.TotalNodeRetries());
  w->Key("node_backoff_seconds").Value(pipeline.TotalNodeBackoffSeconds());
  w->Key("invariant_cache_hits").Value(pipeline.invariant_cache_hits);
  w->Key("invariant_cache_misses").Value(pipeline.invariant_cache_misses);
  w->Key("incore_nodes").Value(pipeline.IncoreNodes());
  w->Key("dataflow_nodes").Value(pipeline.DataflowNodes());
  if (cost != nullptr) {
    PipelineSim sim = cost->SimulatePipelineDetailed(pipeline);
    w->Key("simulated_seconds").Value(sim.seconds);
    w->Key("speculated_tasks").Value(sim.speculation.speculated);
    w->Key("speculation_won").Value(sim.speculation.won);
    w->Key("speculation_wasted_seconds")
        .Value(sim.speculation.wasted_seconds);
  }
  w->Key("jobs").BeginArray();
  for (const JobStats& job : pipeline.jobs) JobStatsToJson(job, cost, w);
  w->EndArray();
  w->Key("plans").BeginArray();
  for (const PlanStats& plan : pipeline.plans) PlanStatsToJson(plan, w);
  w->EndArray();
  w->EndObject();
}

void PlanStatsToJson(const PlanStats& plan, JsonWriter* w) {
  w->BeginObject();
  w->Key("plan_id").Value(plan.plan_id);
  w->Key("name").Value(plan.name);
  w->Key("status").Value(plan.failed() ? "failed" : "ok");
  w->Key("concurrency_limit").Value(plan.concurrency_limit);
  w->Key("max_observed_concurrency").Value(plan.max_observed_concurrency);
  w->Key("wall_seconds").Value(plan.wall_seconds);
  w->Key("critical_path_seconds").Value(plan.critical_path_seconds);
  w->Key("critical_path_with_backoff_seconds")
      .Value(plan.critical_path_with_backoff_seconds);
  w->Key("total_node_seconds").Value(plan.total_node_seconds);
  w->Key("total_node_retries").Value(plan.total_node_retries);
  w->Key("total_backoff_seconds").Value(plan.total_backoff_seconds);
  w->Key("nodes").BeginArray();
  for (const PlanNodeStats& node : plan.nodes) {
    w->BeginObject();
    w->Key("label").Value(node.label);
    w->Key("status").Value(node.status);
    w->Key("seconds").Value(node.seconds);
    w->Key("attempts").Value(node.attempts);
    w->Key("backoff_seconds").Value(node.backoff_seconds);
    // v7: contraction nodes carry their strategy; in-core nodes also split
    // their time into layout build vs. kernel evaluation.
    if (!node.contraction_strategy.empty()) {
      w->Key("contraction_strategy").Value(node.contraction_strategy);
    }
    if (node.contraction_strategy == "incore") {
      w->Key("layout_build_seconds").Value(node.layout_build_seconds);
      w->Key("evaluate_seconds").Value(node.evaluate_seconds);
    }
    w->Key("deps").BeginArray();
    for (int d : node.deps) w->Value(d);
    w->EndArray();
    w->Key("job_ids").BeginArray();
    for (int64_t id : node.job_ids) w->Value(id);
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

void IterationStatsToJson(const IterationStats& iteration,
                          const CostModel* cost, JsonWriter* w) {
  w->BeginObject();
  w->Key("iteration").Value(iteration.iteration);
  w->Key("wall_seconds").Value(iteration.wall_seconds);
  if (iteration.has_fit) w->Key("fit").Value(iteration.fit);
  if (iteration.has_core_norm) {
    w->Key("core_norm").Value(iteration.core_norm);
  }
  if (!iteration.lambda.empty()) {
    w->Key("lambda").BeginArray();
    for (double l : iteration.lambda) w->Value(l);
    w->EndArray();
  }
  // v8: sketched-Tucker sweeps carry their driver-side sketch cost, the
  // sketch width they contracted with (0 on exact sweeps), and whether the
  // sweep was an exact polish sweep. Absent for every other driver.
  if (iteration.has_sketch) {
    w->Key("sketch")
        .BeginObject()
        .Key("seconds")
        .Value(iteration.sketch_seconds)
        .Key("dims")
        .Value(iteration.sketch_dims)
        .Key("polish")
        .Value(iteration.sketch_polish)
        .EndObject();
  }
  w->Key("pipeline");
  PipelineStatsToJson(iteration.pipeline, cost, w);
  w->EndObject();
}

void ClusterConfigToJson(const ClusterConfig& config, JsonWriter* w) {
  w->BeginObject()
      .Key("num_machines")
      .Value(config.num_machines)
      .Key("map_slots_per_machine")
      .Value(config.map_slots_per_machine)
      .Key("reduce_slots_per_machine")
      .Value(config.reduce_slots_per_machine)
      .Key("num_threads")
      .Value(config.num_threads)
      .Key("backend")
      .Value(config.backend)
      .Key("num_workers")
      .Value(config.EffectiveNumWorkers())
      .Key("max_concurrent_jobs")
      .Value(config.max_concurrent_jobs)
      .Key("contraction")
      .Value(config.contraction)
      .Key("incore_memory_mb")
      .Value(config.incore_memory_mb)
      .Key("tucker_sketch")
      .Value(config.tucker_sketch)
      .Key("sketch_size")
      .Value(config.sketch_size)
      .Key("exact_polish_sweeps")
      .Value(config.exact_polish_sweeps)
      .Key("job_startup_seconds")
      .Value(config.job_startup_seconds)
      .Key("total_shuffle_memory_bytes")
      .Value(config.total_shuffle_memory_bytes)
      .Key("spill_threshold_records")
      .Value(config.spill_threshold_records)
      .Key("spill_compression")
      .Value(SpillCompressionName(config.spill_compression))
      .Key("task_failure_probability")
      .Value(config.task_failure_probability)
      .Key("max_task_attempts")
      .Value(config.max_task_attempts)
      .Key("max_node_attempts")
      .Value(config.max_node_attempts)
      .Key("speculative_execution")
      .Value(config.speculative_execution)
      .Key("speculation_slowstart")
      .Value(config.speculation_slowstart)
      .Key("straggler_jitter")
      .Value(config.straggler_jitter)
      .Key("straggler_jitter_seed")
      .Value(config.straggler_jitter_seed)
      .Key("machine_profiles")
      .BeginArray();
  // Run-length grouped profile list (empty = uniform reference machines).
  for (size_t i = 0; i < config.machine_profiles.size();) {
    const MachineProfile& p = config.machine_profiles[i];
    size_t j = i;
    while (j < config.machine_profiles.size() &&
           config.machine_profiles[j].speed_factor == p.speed_factor &&
           config.machine_profiles[j].failure_multiplier ==
               p.failure_multiplier) {
      ++j;
    }
    w->BeginObject()
        .Key("machines")
        .Value(static_cast<int64_t>(j - i))
        .Key("speed_factor")
        .Value(p.speed_factor)
        .Key("failure_multiplier")
        .Value(p.failure_multiplier)
        .EndObject();
    i = j;
  }
  w->EndArray().EndObject();
}

std::string StatsReportToJson(const StatsReport& report) {
  CostModel cost_model(report.cluster != nullptr ? *report.cluster
                                                 : ClusterConfig());
  const CostModel* cost = report.cluster != nullptr ? &cost_model : nullptr;
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").Value("haten2-stats-v9");
  if (!report.tool.empty()) w.Key("tool").Value(report.tool);
  if (!report.method.empty()) w.Key("method").Value(report.method);
  if (!report.variant.empty()) w.Key("variant").Value(report.variant);
  if (!report.dataset.empty()) w.Key("dataset").Value(report.dataset);
  w.Key("status").Value(report.status);
  w.Key("wall_seconds").Value(report.wall_seconds);
  if (report.has_fit) w.Key("fit").Value(report.fit);
  if (report.iterations_run > 0) {
    w.Key("iterations_run").Value(report.iterations_run);
  }
  if (report.cluster != nullptr) {
    w.Key("cluster");
    ClusterConfigToJson(*report.cluster, &w);
  }
  if (report.trace != nullptr) {
    w.Key("iterations").BeginArray();
    for (const IterationStats& it : report.trace->iterations) {
      IterationStatsToJson(it, cost, &w);
    }
    w.EndArray();
  }
  if (report.pipeline != nullptr) {
    w.Key("pipeline");
    PipelineStatsToJson(*report.pipeline, cost, &w);
  }
  if (report.refit != nullptr) {
    const RefitStatsReport& r = *report.refit;
    w.Key("refit")
        .BeginObject()
        .Key("epochs")
        .Value(r.epochs)
        .Key("delta_nnz")
        .Value(r.delta_nnz)
        .Key("merge_seconds")
        .Value(r.merge_seconds)
        .Key("refit_seconds")
        .Value(r.refit_seconds)
        .Key("refit_iterations")
        .Value(r.refit_iterations)
        .Key("incremental")
        .Value(r.incremental)
        .Key("epochs_behind")
        .Value(r.epochs_behind)
        .Key("max_epochs_behind")
        .Value(r.max_epochs_behind)
        .EndObject();
  }
  if (report.workers != nullptr && !report.workers->empty()) {
    w.Key("workers").BeginArray();
    for (const distributed::WorkerStats& ws : *report.workers) {
      w.BeginObject()
          .Key("worker")
          .Value(ws.worker)
          .Key("tasks")
          .Value(ws.tasks)
          .Key("wire_bytes_sent")
          .Value(ws.wire_bytes_sent)
          .Key("wire_bytes_received")
          .Value(ws.wire_bytes_received)
          .Key("restarts")
          .Value(ws.restarts)
          .EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  return w.str();
}

Status WriteStatsJsonFile(const StatsReport& report,
                          const std::string& path) {
  std::string json = StatsReportToJson(report);
  json.push_back('\n');
  return WriteTextFile(path, json);
}

}  // namespace haten2
