#ifndef HATEN2_MAPREDUCE_STATS_H_
#define HATEN2_MAPREDUCE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace haten2 {

/// \brief Counters collected while executing one MapReduce job.
///
/// `map_output_records` / `map_output_bytes` measure the job's *intermediate
/// data* — the quantity Tables III and IV of the paper bound per method. The
/// per-task vectors feed the CostModel's simulated makespan.
struct JobStats {
  std::string name;

  int64_t map_input_records = 0;
  /// Records emitted by mappers before the combiner (if any) ran.
  int64_t pre_combine_records = 0;
  /// Records actually shuffled (after combining).
  int64_t map_output_records = 0;
  uint64_t map_output_bytes = 0;

  int64_t reduce_input_groups = 0;
  int64_t reduce_output_records = 0;

  /// Input records processed by each map task.
  std::vector<int64_t> map_task_records;
  /// Execution attempts per map task (1 = no retry; failure injection).
  std::vector<int> map_task_attempts;
  /// Total retried map-task attempts in this job.
  int64_t map_task_retries = 0;
  /// Records written to (and re-read from) spill files during the shuffle.
  int64_t spilled_records = 0;
  /// Shuffled records received by each reduce partition.
  std::vector<int64_t> reduce_partition_records;
  /// Shuffled bytes received by each reduce partition.
  std::vector<uint64_t> reduce_partition_bytes;

  /// Real in-process execution time of this job.
  double wall_seconds = 0.0;
};

/// \brief Aggregate over the jobs of one logical operation (e.g. one
/// evaluation of X ×₂ Bᵀ ×₃ Cᵀ, or one full decomposition).
struct PipelineStats {
  std::vector<JobStats> jobs;

  int64_t NumJobs() const { return static_cast<int64_t>(jobs.size()); }

  /// Max over jobs of shuffled records — the paper's "Max. Intermediate
  /// Data" column.
  int64_t MaxIntermediateRecords() const;
  uint64_t MaxIntermediateBytes() const;

  int64_t TotalIntermediateRecords() const;
  double TotalWallSeconds() const;

  void Append(const PipelineStats& other);
  void Clear() { jobs.clear(); }

  /// Multi-line human-readable summary.
  std::string ToString() const;
};

}  // namespace haten2

#endif  // HATEN2_MAPREDUCE_STATS_H_
