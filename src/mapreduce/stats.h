#ifndef HATEN2_MAPREDUCE_STATS_H_
#define HATEN2_MAPREDUCE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace haten2 {

/// \brief Wall time attributed to each phase of one engine job.
///
/// The engine times the phases as contiguous segments covering Run() end to
/// end, so on a successful job Total() ≈ JobStats::wall_seconds (the gaps
/// are allocation noise). On a failed job only the phases that actually ran
/// are populated.
struct PhaseTimes {
  /// Emitter setup, map tasks (reader calls), and retry bookkeeping.
  double map_seconds = 0.0;
  /// End-of-task combiners; 0 when the job has no combiner.
  double combine_seconds = 0.0;
  /// Shuffle/group: spill drain and group-by-key into reduce partitions.
  double shuffle_seconds = 0.0;
  /// Reducer invocations and output concatenation.
  double reduce_seconds = 0.0;

  double Total() const {
    return map_seconds + combine_seconds + shuffle_seconds + reduce_seconds;
  }
};

/// \brief min / p50 / max summary of a per-task (or per-partition) counter
/// vector — the skew the CostModel's LPT makespan reacts to.
struct TaskSkew {
  int64_t tasks = 0;
  int64_t min_records = 0;
  int64_t p50_records = 0;
  int64_t max_records = 0;
};

/// Computes the skew summary of `counts` (all zeros when empty).
TaskSkew SkewOf(std::vector<int64_t> counts);

/// \brief Counters collected while executing one MapReduce job.
///
/// `map_output_records` / `map_output_bytes` measure the job's *intermediate
/// data* — the quantity Tables III and IV of the paper bound per method. The
/// per-task vectors feed the CostModel's simulated makespan.
///
/// Byte counters use the serialized record width sizeof(std::pair<K, V>)
/// (padding included) — the same width spill files occupy on disk, so
/// "bytes" in stats equals bytes observable outside the process (see
/// docs/INTERNALS.md, Accounting).
struct JobStats {
  std::string name;

  /// Engine-wide monotonically increasing job identifier (the same sequence
  /// number that keys spill-file prefixes). Stable under concurrent
  /// scheduling: drivers attribute jobs to ALS iterations by id ranges, not
  /// by position in the pipeline log (which records completion order).
  int64_t job_id = -1;
  /// Identifier of the Plan this job ran under, or -1 for a job issued
  /// directly through Engine::Run outside any plan.
  int64_t plan_id = -1;

  int64_t map_input_records = 0;
  /// Records emitted by mappers before the combiner (if any) ran.
  int64_t pre_combine_records = 0;
  /// Records actually shuffled (after combining).
  int64_t map_output_records = 0;
  uint64_t map_output_bytes = 0;

  int64_t reduce_input_groups = 0;
  int64_t reduce_output_records = 0;

  /// Input records actually passed to the reader by each map task (an
  /// aborted or budget-killed task counts only what it processed).
  std::vector<int64_t> map_task_records;
  /// Execution attempts per map task (1 = no retry; failure injection).
  std::vector<int> map_task_attempts;
  /// Total retried map-task attempts in this job.
  int64_t map_task_retries = 0;
  /// Records written to (and re-read from) spill files during the shuffle.
  int64_t spilled_records = 0;
  /// Raw serialized width of those records (spilled_records * record
  /// width) — retained under its historical name for pre-v4 consumers;
  /// always equals spilled_raw_bytes.
  uint64_t spilled_bytes = 0;
  /// Raw (pre-codec) bytes of the spilled records.
  uint64_t spilled_raw_bytes = 0;
  /// Bytes the spill runs actually occupied on disk after
  /// ClusterConfig::spill_compression (== spilled_raw_bytes when the codec
  /// is `none`). This is the width the CostModel charges disk bandwidth.
  uint64_t spilled_compressed_bytes = 0;
  /// On-disk (compressed) spill bytes written by each map task — the
  /// per-task disk traffic behind CostModel::SimulateJob's map disk term.
  std::vector<uint64_t> map_task_spilled_bytes;
  /// Shuffled records received by each reduce partition.
  std::vector<int64_t> reduce_partition_records;
  /// Shuffled bytes received by each reduce partition.
  std::vector<uint64_t> reduce_partition_bytes;

  /// Real in-process execution time of this job.
  double wall_seconds = 0.0;
  /// Per-phase breakdown of wall_seconds.
  PhaseTimes phases;

  /// Empty for a successful job; otherwise how it died:
  /// "oom" (shuffle-memory budget), "aborted" (a task exceeded
  /// max_task_attempts), "io_error" (spill read/write failure), or
  /// "worker_lost" (subprocess backend: a worker process died or its
  /// socket broke — surfaced as kAborted, so node retries re-run it).
  std::string failure;
  bool failed() const { return !failure.empty(); }

  TaskSkew MapTaskSkew() const { return SkewOf(map_task_records); }
  TaskSkew ReducePartitionSkew() const {
    return SkewOf(reduce_partition_records);
  }
};

/// \brief Execution record of one node of a dataflow Plan (see
/// mapreduce/plan.h). A node usually wraps exactly one Engine::Run call
/// (its job id then appears in `job_ids`); assembly nodes that only
/// concatenate upstream outputs run no engine job and have an empty list.
struct PlanNodeStats {
  std::string label;
  /// Indices (into PlanStats::nodes) of the nodes this one depends on —
  /// the plan's dependency edges.
  std::vector<int> deps;
  /// Engine job ids issued while this node executed.
  std::vector<int64_t> job_ids;
  /// Wall time of the node's executor, summed over every attempt (0 for
  /// nodes that never ran).
  double seconds = 0.0;
  /// Executor attempts: 0 = never ran, 1 = ran once (no retry), k > 1 =
  /// retried k-1 times after transient failures
  /// (ClusterConfig::max_node_attempts).
  int attempts = 0;
  /// Simulated backoff accumulated before this node's retries (cluster
  /// time, counted by the CostModel — the in-process run never sleeps).
  double backoff_seconds = 0.0;
  /// "ok", "failed", or "skipped" (a dependency failed first).
  std::string status = "skipped";
  /// Contraction strategy that built this node ("dataflow" / "incore");
  /// empty for nodes outside a contraction evaluation.
  std::string contraction_strategy;
  /// Phase breakdown of an in-core node (both 0 for dataflow nodes):
  /// layout construction / cache fetch vs. kernel evaluation time.
  double layout_build_seconds = 0.0;
  double evaluate_seconds = 0.0;
};

/// \brief Statistics of one scheduled Plan: the DAG shape, the concurrency
/// the scheduler actually achieved, and the critical-path/total-work split
/// that bounds what more concurrency could buy (critical_path_seconds is
/// the lower bound on plan wall time with infinite workers).
struct PlanStats {
  int64_t plan_id = -1;
  std::string name;
  std::vector<PlanNodeStats> nodes;

  /// Configured cap on concurrently running nodes.
  int concurrency_limit = 1;
  /// Maximum number of nodes observed running simultaneously.
  int max_observed_concurrency = 0;

  /// End-to-end wall time of the plan (schedule + execute + join).
  double wall_seconds = 0.0;
  /// Longest dependency-chain sum of node seconds.
  double critical_path_seconds = 0.0;
  /// The same longest chain with each node's simulated retry backoff
  /// included — the critical path as the CostModel's simulated cluster
  /// would experience it (the scheduler never sleeps backoff for real, so
  /// it is excluded from critical_path_seconds). Equal to
  /// critical_path_seconds when no node retried.
  double critical_path_with_backoff_seconds = 0.0;
  /// Sum of node seconds over every node that ran.
  double total_node_seconds = 0.0;
  /// Retried node attempts across the plan: sum of (attempts - 1) over the
  /// nodes that ran.
  int total_node_retries = 0;
  /// Sum of simulated retry backoff across the plan's nodes.
  double total_backoff_seconds = 0.0;

  bool failed() const {
    for (const PlanNodeStats& n : nodes) {
      if (n.status == "failed") return true;
    }
    return false;
  }
};

/// \brief Aggregate over the jobs of one logical operation (e.g. one
/// evaluation of X ×₂ Bᵀ ×₃ Cᵀ, or one full decomposition).
struct PipelineStats {
  std::vector<JobStats> jobs;
  /// One entry per Plan scheduled through the engine (empty when every job
  /// was issued directly). Jobs of a plan also appear in `jobs`, tagged
  /// with the matching JobStats::plan_id.
  std::vector<PlanStats> plans;

  /// Iteration-invariant input-scan cache (core/contract.h ContractCache):
  /// how often a repeated bottleneck-op evaluation reused the decoded
  /// coordinate records of its input tensor instead of re-scanning it.
  int64_t invariant_cache_hits = 0;
  int64_t invariant_cache_misses = 0;

  int64_t NumJobs() const { return static_cast<int64_t>(jobs.size()); }

  /// Max over jobs of shuffled records — the paper's "Max. Intermediate
  /// Data" column.
  int64_t MaxIntermediateRecords() const;
  uint64_t MaxIntermediateBytes() const;

  int64_t TotalIntermediateRecords() const;
  uint64_t TotalIntermediateBytes() const;
  int64_t TotalSpilledRecords() const;
  /// Raw vs on-disk (post-codec) spill volume over the pipeline's jobs;
  /// equal when spill compression is off.
  uint64_t TotalSpilledRawBytes() const;
  uint64_t TotalSpilledCompressedBytes() const;
  int64_t TotalMapTaskRetries() const;
  /// Jobs that ended with a non-empty JobStats::failure.
  int64_t NumFailedJobs() const;
  double TotalWallSeconds() const;

  /// Max over plans of the concurrency the scheduler actually achieved
  /// (0 when no plan ran).
  int MaxScheduledConcurrency() const;
  /// Sum over plans of the critical-path seconds — the lower bound on their
  /// combined wall time under unlimited concurrency.
  double TotalCriticalPathSeconds() const;
  /// Sum over plans of the backoff-inclusive critical path (the simulated
  /// cluster's view; == TotalCriticalPathSeconds() when nothing retried).
  double TotalCriticalPathWithBackoffSeconds() const;
  /// Sum over plans of total node seconds (the serial-execution cost).
  double TotalPlanNodeSeconds() const;
  /// Sum over plans of retried node attempts (plan-level recovery).
  int64_t TotalNodeRetries() const;
  /// Sum over plans of simulated retry backoff (counted by the CostModel).
  double TotalNodeBackoffSeconds() const;
  /// Plan nodes executed by each contraction strategy across the pipeline
  /// (nodes with an empty strategy tag — non-contraction work — count in
  /// neither).
  int64_t IncoreNodes() const;
  int64_t DataflowNodes() const;

  void Append(const PipelineStats& other);
  void Clear() {
    jobs.clear();
    plans.clear();
    invariant_cache_hits = 0;
    invariant_cache_misses = 0;
  }

  /// Multi-line human-readable summary.
  std::string ToString() const;
};

/// \brief One ALS (outer) iteration as recorded by a decomposition driver:
/// model-quality numbers plus the MapReduce jobs the iteration executed.
/// A failed iteration (o.o.m. mid-MTTKRP) is still recorded, with the jobs
/// that ran before the failure.
struct IterationStats {
  int iteration = 0;
  double wall_seconds = 0.0;

  /// PARAFAC fit after this iteration (when the driver computed it).
  bool has_fit = false;
  double fit = 0.0;
  /// Tucker ||G|| after this iteration (when applicable).
  bool has_core_norm = false;
  double core_norm = 0.0;
  /// PARAFAC λ after this iteration (empty for Tucker).
  std::vector<double> lambda;

  /// Sketched-Tucker sweep annotations (v8): driver-side seconds spent in
  /// sketch construction + randomized range finding, the sketch width s
  /// this sweep contracted with (0 on exact sweeps), and whether the sweep
  /// was an exact polish sweep. has_sketch is false for every other driver.
  bool has_sketch = false;
  double sketch_seconds = 0.0;
  int64_t sketch_dims = 0;
  bool sketch_polish = false;

  /// The engine jobs executed during this iteration.
  PipelineStats pipeline;
};

/// \brief Per-iteration trace of one decomposition run, filled by the
/// drivers when Haten2Options::trace points at one.
struct DecompositionTrace {
  std::vector<IterationStats> iterations;

  void Clear() { iterations.clear(); }
};

}  // namespace haten2

#endif  // HATEN2_MAPREDUCE_STATS_H_
