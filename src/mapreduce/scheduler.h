#ifndef HATEN2_MAPREDUCE_SCHEDULER_H_
#define HATEN2_MAPREDUCE_SCHEDULER_H_

#include "mapreduce/engine.h"
#include "mapreduce/plan.h"
#include "util/status.h"

namespace haten2 {

/// \brief Executes a Plan's DAG on an Engine, overlapping independent nodes.
///
/// Scheduling rules (see docs/INTERNALS.md, "Dataflow plan layer"):
///   - A node is *ready* once all of its dependencies finished successfully;
///     ready nodes start lowest-index-first.
///   - At most `max_concurrent` nodes run at a time. With a cap of 1 the
///     plan executes serially in node-index order — exactly the sequence the
///     legacy eager drivers produced — so cap 1 is bit-compatible with
///     pre-plan behaviour.
///   - On the first node failure no further nodes start; nodes already
///     running finish (their engine jobs are real and stay in the pipeline
///     log). Un-run nodes are recorded as "skipped", and Execute returns the
///     failed node's Status (the lowest-index failure when several nodes
///     fail in the same wave).
///   - **Recovery** (ClusterConfig::max_node_attempts > 1): a node whose
///     executor returns a *transient* failure — kAborted (a job exhausted
///     its task attempts) or kIOError, plus kResourceExhausted when
///     retry_oom_nodes is set — is re-run in place, up to the attempt cap,
///     with capped exponential backoff between attempts. Backoff is
///     *simulated* cluster time: it is recorded in
///     PlanNodeStats::backoff_seconds and charged by the CostModel, never
///     slept for real. Retries get fresh engine job ids, so the
///     deterministic failure injection draws a fresh pattern and a crashed
///     job's retry genuinely can succeed; producers write their output slots
///     only on success, so re-running a node is idempotent. Permanent
///     failures (bad input, contract violations) fail fast, and a node that
///     exhausts its attempts fails the plan exactly as before.
///
/// Node executors run on scheduler-owned threads, never on the engine's
/// worker pool: a node calls Engine::Run, which itself fans out onto the
/// pool, and nesting that inside a pool task would deadlock a fully
/// subscribed pool. Each executor runs under an Engine::PlanScope, so every
/// job it issues is tagged with the plan id and attributed to the node.
///
/// Execute records a PlanStats into the engine's pipeline log: the DAG
/// shape, per-node timing and status, the concurrency actually observed,
/// and the critical-path vs total-node-seconds split.
class PlanScheduler {
 public:
  /// `max_concurrent` <= 0 uses the engine's
  /// ClusterConfig::max_concurrent_jobs.
  explicit PlanScheduler(Engine* engine, int max_concurrent = 0);

  /// Runs the plan to completion (or first failure). Returns the build
  /// error without running anything when the plan was malformed.
  Status Execute(const Plan& plan);

  int max_concurrent() const { return max_concurrent_; }

 private:
  Status ExecuteSerial(const Plan& plan, PlanStats* stats);
  Status ExecuteConcurrent(const Plan& plan, PlanStats* stats);

  Engine* engine_;
  int max_concurrent_;
};

}  // namespace haten2

#endif  // HATEN2_MAPREDUCE_SCHEDULER_H_
