#ifndef HATEN2_MAPREDUCE_HASH_H_
#define HATEN2_MAPREDUCE_HASH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>

namespace haten2 {

/// splitmix64 finalizer: cheap, well-mixed 64-bit hash used for shuffle
/// partitioning. std::hash<int64_t> is the identity on libstdc++, which would
/// send contiguous tensor indices to contiguous partitions and skew the
/// simulated shuffle; this mixes properly.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return Mix64(seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// Default shuffle hash: integral types, pairs, tuples and strings.
template <typename T, typename Enable = void>
struct ShuffleHash;

template <typename T>
struct ShuffleHash<T, std::enable_if_t<std::is_integral_v<T>>> {
  uint64_t operator()(const T& v) const {
    return Mix64(static_cast<uint64_t>(v));
  }
};

template <typename A, typename B>
struct ShuffleHash<std::pair<A, B>> {
  uint64_t operator()(const std::pair<A, B>& p) const {
    return HashCombine(ShuffleHash<A>()(p.first), ShuffleHash<B>()(p.second));
  }
};

template <typename... Ts>
struct ShuffleHash<std::tuple<Ts...>> {
  uint64_t operator()(const std::tuple<Ts...>& t) const {
    uint64_t seed = 0x8badf00dULL;
    std::apply(
        [&seed](const Ts&... vs) {
          ((seed = HashCombine(seed, ShuffleHash<Ts>()(vs))), ...);
        },
        t);
    return seed;
  }
};

template <>
struct ShuffleHash<std::string> {
  uint64_t operator()(const std::string& s) const {
    uint64_t seed = 0xcbf29ce484222325ULL;
    for (char c : s) {
      seed = HashCombine(seed, static_cast<uint64_t>(
                                   static_cast<unsigned char>(c)));
    }
    return seed;
  }
};

}  // namespace haten2

#endif  // HATEN2_MAPREDUCE_HASH_H_
