#ifndef HATEN2_MAPREDUCE_SPILL_CODEC_H_
#define HATEN2_MAPREDUCE_SPILL_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace haten2 {

/// \brief On-disk encoding of the engine's sort-spill runs.
///
/// `kNone` writes raw fixed-size records — byte-for-byte the historical
/// format, kept as the deterministic test double. `kDeltaVarint` writes each
/// spill run as one self-describing block: a fixed header carrying the raw
/// and encoded byte counts plus the record count, then the varint-coded
/// sort permutation, then a payload in which records are sorted by an
/// 8-byte key prefix, the prefix delta-encoded against its predecessor and
/// varint-coded, and the rest of each record (key tail, padding, value)
/// stored raw. The decoder scatters records back through the permutation,
/// reproducing the spilled byte stream exactly — so the drain, the reducer
/// inputs, and every decomposition result are bit-identical with
/// compression on or off (docs/INTERNALS.md, Accounting).
enum class SpillCompression : int {
  kNone = 0,
  kDeltaVarint = 1,
};

/// Canonical knob spelling: "none" or "delta_varint".
std::string_view SpillCompressionName(SpillCompression codec);
Result<SpillCompression> ParseSpillCompression(const std::string& name);

// --- varint primitives (exposed for the UBSan-facing codec tests) ---------

/// Appends the LEB128 encoding of `value` (1-10 bytes) to *out.
void AppendVarint(uint64_t value, std::string* out);

/// Decodes one varint from data[0, size); returns the number of bytes
/// consumed, or 0 when the input is truncated or overlong (> 10 bytes).
size_t DecodeVarint(const char* data, size_t size, uint64_t* value);

// --- block format ----------------------------------------------------------

/// First 4 bytes of every delta_varint block ("SPL1" little-endian).
inline constexpr uint32_t kSpillBlockMagic = 0x314C5053u;
/// Serialized header width: magic, codec id, record count, raw bytes,
/// payload bytes.
inline constexpr size_t kSpillBlockHeaderBytes = 32;

struct SpillBlockHeader {
  uint32_t magic = kSpillBlockMagic;
  uint32_t codec = static_cast<uint32_t>(SpillCompression::kDeltaVarint);
  uint64_t record_count = 0;
  /// record_count * record width — what the block decodes back to.
  uint64_t raw_bytes = 0;
  /// Encoded payload size following the header.
  uint64_t payload_bytes = 0;
};

/// Serializes `header` into exactly kSpillBlockHeaderBytes at `out`.
void EncodeSpillBlockHeader(const SpillBlockHeader& header, char* out);

/// Parses a header from data[0, size); rejects short buffers, bad magic,
/// and unknown codec ids. `context` (e.g. "path @ offset N") is woven into
/// the error message.
Result<SpillBlockHeader> ParseSpillBlockHeader(const char* data, size_t size,
                                               const std::string& context);

/// Encodes one spill run of `record_count` fixed-size records
/// (`record_bytes` wide each, key in the first `key_bytes`) as a
/// header + permutation + delta/varint payload appended to *out. Returns
/// the number of bytes appended. Decoding restores the records in their
/// original order, byte for byte.
size_t EncodeSpillBlock(const char* records, size_t record_count,
                        size_t record_bytes, size_t key_bytes,
                        std::string* out);

/// Decodes a block payload (its header already parsed) back into raw
/// records appended to *records_out, in their original pre-sort order.
/// Rejects payloads whose varints are malformed, whose permutation is not
/// a bijection, or whose decoded size disagrees with the header. `context`
/// names the spill file and block offset for the error message.
Status DecodeSpillBlockPayload(const SpillBlockHeader& header,
                               const char* payload, size_t payload_size,
                               size_t record_bytes, size_t key_bytes,
                               const std::string& context,
                               std::string* records_out);

}  // namespace haten2

#endif  // HATEN2_MAPREDUCE_SPILL_CODEC_H_
