#include "mapreduce/plan.h"

namespace haten2 {

int Plan::AddJob(std::string label, std::vector<int> deps,
                 std::function<Status()> run) {
  const int index = static_cast<int>(nodes_.size());
  for (int d : deps) {
    if (d < 0 || d >= index) {
      // Keep the first error: it names the edge that actually broke the
      // build, later ones are usually knock-on effects.
      if (build_status_.ok()) {
        build_status_ = Status::InvalidArgument(
            "plan '" + name_ + "': node '" + label + "' (index " +
            std::to_string(index) + ") depends on invalid node index " +
            std::to_string(d));
      }
      return -1;
    }
  }
  JobSpec spec;
  spec.label = std::move(label);
  spec.deps = std::move(deps);
  spec.run = std::move(run);
  nodes_.push_back(std::move(spec));
  return index;
}

}  // namespace haten2
