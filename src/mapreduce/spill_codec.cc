#include "mapreduce/spill_codec.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

namespace haten2 {

namespace {

/// Little-endian read of the first min(8, key_bytes) bytes of a record's
/// key — the sort/delta prefix. Reading fewer than 8 bytes zero-extends, so
/// short keys order exactly by their value. The prefix is an *ordering*
/// device, not an interpretation of the key type: any consistent total
/// order makes deltas small on clustered keys, which is all the codec needs.
uint64_t KeyPrefix(const char* record, size_t key_bytes) {
  uint64_t prefix = 0;
  std::memcpy(&prefix, record, key_bytes < 8 ? key_bytes : 8);
  return prefix;
}

void StoreU32(uint32_t v, char* out) { std::memcpy(out, &v, 4); }
void StoreU64(uint64_t v, char* out) { std::memcpy(out, &v, 8); }
uint32_t LoadU32(const char* in) {
  uint32_t v;
  std::memcpy(&v, in, 4);
  return v;
}
uint64_t LoadU64(const char* in) {
  uint64_t v;
  std::memcpy(&v, in, 8);
  return v;
}

}  // namespace

std::string_view SpillCompressionName(SpillCompression codec) {
  switch (codec) {
    case SpillCompression::kNone:
      return "none";
    case SpillCompression::kDeltaVarint:
      return "delta_varint";
  }
  return "unknown";
}

Result<SpillCompression> ParseSpillCompression(const std::string& name) {
  if (name == "none") return SpillCompression::kNone;
  if (name == "delta_varint") return SpillCompression::kDeltaVarint;
  return Status::InvalidArgument(
      "unknown spill compression '" + name +
      "' (expected 'none' or 'delta_varint')");
}

void AppendVarint(uint64_t value, std::string* out) {
  while (value >= 0x80u) {
    out->push_back(static_cast<char>((value & 0x7Fu) | 0x80u));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

size_t DecodeVarint(const char* data, size_t size, uint64_t* value) {
  uint64_t result = 0;
  size_t i = 0;
  // 10 bytes bound a 64-bit varint; shifts stay < 64 by construction, which
  // keeps the decode clean under UBSan even on hostile input.
  for (; i < size && i < 10; ++i) {
    uint64_t byte = static_cast<uint8_t>(data[i]);
    unsigned shift = static_cast<unsigned>(7 * i);
    if (i == 9) {
      // Only the low bit of the 10th byte fits into a uint64.
      if ((byte & 0x80u) != 0 || byte > 1) return 0;
    }
    result |= (byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      *value = result;
      return i + 1;
    }
  }
  return 0;  // truncated (ran out of input) or overlong
}

void EncodeSpillBlockHeader(const SpillBlockHeader& header, char* out) {
  StoreU32(header.magic, out);
  StoreU32(header.codec, out + 4);
  StoreU64(header.record_count, out + 8);
  StoreU64(header.raw_bytes, out + 16);
  StoreU64(header.payload_bytes, out + 24);
}

Result<SpillBlockHeader> ParseSpillBlockHeader(const char* data, size_t size,
                                               const std::string& context) {
  if (size < kSpillBlockHeaderBytes) {
    return Status::IOError("truncated spill block header at " + context);
  }
  SpillBlockHeader header;
  header.magic = LoadU32(data);
  header.codec = LoadU32(data + 4);
  header.record_count = LoadU64(data + 8);
  header.raw_bytes = LoadU64(data + 16);
  header.payload_bytes = LoadU64(data + 24);
  if (header.magic != kSpillBlockMagic) {
    return Status::IOError("bad spill block magic at " + context);
  }
  if (header.codec != static_cast<uint32_t>(SpillCompression::kDeltaVarint)) {
    return Status::IOError("unknown spill block codec " +
                           std::to_string(header.codec) + " at " + context);
  }
  return header;
}

size_t EncodeSpillBlock(const char* records, size_t record_count,
                        size_t record_bytes, size_t key_bytes,
                        std::string* out) {
  const size_t prefix_bytes = key_bytes < 8 ? key_bytes : 8;
  const size_t tail_bytes = record_bytes - prefix_bytes;

  // Sort by key prefix so consecutive deltas are small. Stable, so the
  // encoded bytes are deterministic for equal prefixes; the decoder undoes
  // the reorder entirely via the stored permutation.
  std::vector<uint32_t> order(record_count);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return KeyPrefix(records + a * record_bytes, key_bytes) <
                            KeyPrefix(records + b * record_bytes, key_bytes);
                   });

  const size_t header_at = out->size();
  out->append(kSpillBlockHeaderBytes, '\0');

  // The sort permutation (original index of each sorted position) comes
  // first: the decoder scatters records back to their emission slots, so
  // the decoded byte stream — and hence everything downstream of the drain,
  // including floating-point summation order — is identical to the raw
  // format's. Costs ~log2(run length)/7 bytes per record against the 8-byte
  // prefix the deltas save.
  for (size_t i = 0; i < record_count; ++i) {
    AppendVarint(order[i], out);
  }

  uint64_t prev = 0;
  for (size_t i = 0; i < record_count; ++i) {
    const char* rec = records + static_cast<size_t>(order[i]) * record_bytes;
    uint64_t prefix = KeyPrefix(rec, key_bytes);
    AppendVarint(prefix - prev, out);  // sorted, so the delta is non-negative
    prev = prefix;
    out->append(rec + prefix_bytes, tail_bytes);
  }

  SpillBlockHeader header;
  header.record_count = record_count;
  header.raw_bytes = static_cast<uint64_t>(record_count) * record_bytes;
  header.payload_bytes =
      out->size() - header_at - kSpillBlockHeaderBytes;
  EncodeSpillBlockHeader(header, out->data() + header_at);
  return out->size() - header_at;
}

Status DecodeSpillBlockPayload(const SpillBlockHeader& header,
                               const char* payload, size_t payload_size,
                               size_t record_bytes, size_t key_bytes,
                               const std::string& context,
                               std::string* records_out) {
  if (header.raw_bytes != header.record_count * record_bytes) {
    return Status::IOError("spill block raw-byte count disagrees with its "
                           "record count at " +
                           context);
  }
  const size_t prefix_bytes = key_bytes < 8 ? key_bytes : 8;
  const size_t tail_bytes = record_bytes - prefix_bytes;
  size_t pos = 0;

  // Permutation first: it must be a bijection on [0, record_count) or the
  // scatter below would silently drop or duplicate records.
  std::vector<uint64_t> perm(header.record_count, 0);
  std::vector<bool> seen(header.record_count, false);
  for (uint64_t i = 0; i < header.record_count; ++i) {
    uint64_t idx = 0;
    size_t used = DecodeVarint(payload + pos, payload_size - pos, &idx);
    if (used == 0) {
      return Status::IOError("corrupt permutation varint in spill block at " +
                             context);
    }
    pos += used;
    if (idx >= header.record_count || seen[idx]) {
      return Status::IOError("corrupt permutation in spill block at " +
                             context);
    }
    seen[idx] = true;
    perm[i] = idx;
  }

  const size_t base = records_out->size();
  records_out->resize(base + header.record_count * record_bytes);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < header.record_count; ++i) {
    uint64_t delta = 0;
    size_t used = DecodeVarint(payload + pos, payload_size - pos, &delta);
    if (used == 0) {
      return Status::IOError("corrupt varint in spill block at " + context);
    }
    pos += used;
    if (payload_size - pos < tail_bytes) {
      return Status::IOError("truncated spill block payload at " + context);
    }
    prev += delta;
    char prefix[8];
    StoreU64(prev, prefix);
    char* dst = records_out->data() + base + perm[i] * record_bytes;
    std::memcpy(dst, prefix, prefix_bytes);
    std::memcpy(dst + prefix_bytes, payload + pos, tail_bytes);
    pos += tail_bytes;
  }
  if (pos != payload_size) {
    return Status::IOError("trailing garbage in spill block at " + context);
  }
  return Status::OK();
}

}  // namespace haten2
