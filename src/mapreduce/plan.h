#ifndef HATEN2_MAPREDUCE_PLAN_H_
#define HATEN2_MAPREDUCE_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace haten2 {

/// \brief Phase breakdown of one in-core contraction node, filled by the
/// node's executor while it runs (core/incore_contraction.cc) and copied
/// into PlanNodeStats after the plan completes. Shared-pointer ownership
/// lets the plan builder hand the same timing sink to the executor closure
/// and to the annotated JobSpec.
struct ContractionTiming {
  /// Building (or fetching from the ContractCache) the compressed layout.
  double layout_build_seconds = 0.0;
  /// Running the SpMV / blocked-chain kernels over the layout.
  double evaluate_seconds = 0.0;
};

/// \brief One node of a dataflow Plan: a labelled unit of work plus the
/// indices of the nodes whose outputs it consumes.
///
/// `run` typically wraps one Engine::Run call (an HaTen2 MapReduce job);
/// assembly nodes that only concatenate upstream outputs are also valid.
/// The executor communicates data through slots owned by the plan builder
/// (see Plan::AddProducer), not through the scheduler: the plan layer
/// sequences work, it does not marshal records.
struct JobSpec {
  std::string label;
  /// Indices (into the plan's node list) of this node's inputs. Every
  /// dependency must already be added, which makes plans acyclic by
  /// construction.
  std::vector<int> deps;
  /// Executes the node. Runs on a scheduler thread with an Engine::PlanScope
  /// installed, so any engine jobs it issues are tagged with the plan id.
  std::function<Status()> run;
  /// Which contraction strategy produced this node ("dataflow" / "incore");
  /// empty for nodes that are not part of a contraction evaluation. Copied
  /// into PlanNodeStats so stats_json records the per-node choice.
  std::string contraction_strategy;
  /// Timing sink for in-core nodes (null otherwise); see ContractionTiming.
  std::shared_ptr<ContractionTiming> contraction_timing;
};

/// \brief A declarative job graph: typed nodes with explicit data
/// dependencies, built up-front and handed to a PlanScheduler.
///
/// Dependencies may only reference previously added nodes, so every Plan is
/// a DAG by construction — there is no cycle check because cycles cannot be
/// expressed. Malformed edges (negative or forward indices) poison the
/// builder: AddJob keeps accepting calls so construction code stays linear,
/// and PlanScheduler::Execute rejects the finished plan with the recorded
/// status.
///
/// \code
///   Plan plan("drn_mode1");
///   std::vector<Rec> h0, h1;
///   int a = plan.AddProducer<std::vector<Rec>>(
///       "hadamard_s0", {}, [&] { return RunHadamard(0); }, &h0);
///   int b = plan.AddProducer<std::vector<Rec>>(
///       "hadamard_s1", {}, [&] { return RunHadamard(1); }, &h1);
///   plan.AddJob("merge", {a, b}, [&] { return Merge(h0, h1); });
/// \endcode
class Plan {
 public:
  explicit Plan(std::string name) : name_(std::move(name)) {}

  Plan(const Plan&) = delete;
  Plan& operator=(const Plan&) = delete;
  Plan(Plan&&) = default;
  Plan& operator=(Plan&&) = default;

  /// Adds a node executing `run` after every node in `deps`. Returns the
  /// new node's index (the handle later nodes name it by), or -1 when a
  /// dependency index is invalid (the error is kept in build_status()).
  int AddJob(std::string label, std::vector<int> deps,
             std::function<Status()> run);

  /// Typed convenience over AddJob: `fn` produces a Result<T> whose value is
  /// moved into `*slot` on success. The slot must outlive plan execution and
  /// must only be read by nodes that declare this node as a dependency —
  /// the scheduler's completion ordering is what makes the write visible.
  template <typename T>
  int AddProducer(std::string label, std::vector<int> deps,
                  std::function<Result<T>()> fn, T* slot) {
    return AddJob(std::move(label), std::move(deps),
                  [fn = std::move(fn), slot]() -> Status {
                    Result<T> r = fn();
                    if (!r.ok()) return r.status();
                    *slot = std::move(r).value();
                    return Status::OK();
                  });
  }

  /// Tags node `index` with the contraction strategy that built it and, for
  /// in-core nodes, the timing sink its executor fills. Out-of-range indices
  /// (including the -1 an errored AddJob returned) are ignored — the plan is
  /// already poisoned via build_status() in that case.
  void AnnotateContraction(int index, std::string strategy,
                           std::shared_ptr<ContractionTiming> timing = nullptr) {
    if (index < 0 || index >= size()) return;
    nodes_[static_cast<size_t>(index)].contraction_strategy =
        std::move(strategy);
    nodes_[static_cast<size_t>(index)].contraction_timing = std::move(timing);
  }

  const std::string& name() const { return name_; }
  const std::vector<JobSpec>& nodes() const { return nodes_; }
  int size() const { return static_cast<int>(nodes_.size()); }
  bool empty() const { return nodes_.empty(); }

  /// OK unless an AddJob call named an invalid dependency.
  const Status& build_status() const { return build_status_; }

 private:
  std::string name_;
  std::vector<JobSpec> nodes_;
  Status build_status_ = Status::OK();
};

}  // namespace haten2

#endif  // HATEN2_MAPREDUCE_PLAN_H_
