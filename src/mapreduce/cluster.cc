#include "mapreduce/cluster.h"

#include <cmath>
#include <cstddef>

#include "util/string_util.h"

namespace haten2 {

namespace {

bool FiniteNonNegative(double v) { return std::isfinite(v) && v >= 0.0; }
bool FinitePositive(double v) { return std::isfinite(v) && v > 0.0; }

Status BadField(const char* field, const char* requirement) {
  return Status::InvalidArgument(
      StrFormat("ClusterConfig: %s must be %s", field, requirement));
}

}  // namespace

Result<std::vector<MachineProfile>> ParseMachineProfiles(
    const std::string& spec) {
  std::vector<MachineProfile> profiles;
  if (Trim(spec).empty()) return profiles;  // empty spec = uniform cluster
  for (const std::string& raw : Split(spec, ',')) {
    std::string_view entry = Trim(raw);
    if (entry.empty()) {
      return Status::InvalidArgument(
          "machine_profiles: empty entry (stray comma?) in \"" + spec + "\"");
    }
    // SPEED[xCOUNT][@FAILMULT]
    std::string_view speed_part = entry;
    std::string_view count_part;
    std::string_view fail_part;
    size_t at = entry.find('@');
    if (at != std::string_view::npos) {
      fail_part = Trim(entry.substr(at + 1));
      speed_part = entry.substr(0, at);
    }
    size_t x = speed_part.find('x');
    if (x != std::string_view::npos) {
      count_part = Trim(speed_part.substr(x + 1));
      speed_part = speed_part.substr(0, x);
    }
    speed_part = Trim(speed_part);

    MachineProfile p;
    HATEN2_ASSIGN_OR_RETURN(p.speed_factor, ParseDouble(speed_part));
    int64_t count = 1;
    if (!count_part.empty()) {
      HATEN2_ASSIGN_OR_RETURN(count, ParseInt64(count_part));
    }
    if (!fail_part.empty()) {
      HATEN2_ASSIGN_OR_RETURN(p.failure_multiplier, ParseDouble(fail_part));
    }
    if (!FinitePositive(p.speed_factor)) {
      return Status::InvalidArgument(
          "machine_profiles: speed_factor must be finite and > 0 in \"" +
          std::string(entry) + "\"");
    }
    if (!FiniteNonNegative(p.failure_multiplier)) {
      return Status::InvalidArgument(
          "machine_profiles: failure_multiplier must be finite and >= 0 "
          "in \"" +
          std::string(entry) + "\"");
    }
    if (count < 1) {
      return Status::InvalidArgument(
          "machine_profiles: count must be >= 1 in \"" + std::string(entry) +
          "\"");
    }
    for (int64_t i = 0; i < count; ++i) profiles.push_back(p);
  }
  return profiles;
}

Status ClusterConfig::Validate() const {
  if (num_machines < 1) return BadField("num_machines", ">= 1");
  if (map_slots_per_machine < 1) {
    return BadField("map_slots_per_machine", ">= 1");
  }
  if (reduce_slots_per_machine < 1) {
    return BadField("reduce_slots_per_machine", ">= 1");
  }
  if (num_threads < 1) return BadField("num_threads", ">= 1");
  if (max_concurrent_jobs < 1) return BadField("max_concurrent_jobs", ">= 1");
  if (num_map_tasks < 0) return BadField("num_map_tasks", ">= 0");
  if (num_reduce_tasks < 0) return BadField("num_reduce_tasks", ">= 0");
  if (!FiniteNonNegative(job_startup_seconds)) {
    return BadField("job_startup_seconds", "finite and >= 0");
  }
  if (!FiniteNonNegative(map_seconds_per_record)) {
    return BadField("map_seconds_per_record", "finite and >= 0");
  }
  if (!FiniteNonNegative(reduce_seconds_per_record)) {
    return BadField("reduce_seconds_per_record", "finite and >= 0");
  }
  if (!FinitePositive(network_bytes_per_second)) {
    return BadField("network_bytes_per_second", "finite and > 0");
  }
  if (!FinitePositive(disk_bytes_per_second)) {
    return BadField("disk_bytes_per_second", "finite and > 0");
  }
  if (spill_threshold_records < 1) {
    return BadField("spill_threshold_records", ">= 1");
  }
  if (inject_spill_failure_after_bytes < 0) {
    return BadField("inject_spill_failure_after_bytes", ">= 0");
  }
  if (!(task_failure_probability >= 0.0 && task_failure_probability <= 1.0)) {
    return BadField("task_failure_probability", "in [0, 1]");
  }
  if (max_task_attempts < 1) return BadField("max_task_attempts", ">= 1");
  if (max_node_attempts < 1) return BadField("max_node_attempts", ">= 1");
  if (!FiniteNonNegative(node_backoff_base_seconds)) {
    return BadField("node_backoff_base_seconds", "finite and >= 0");
  }
  if (!(std::isfinite(node_backoff_multiplier) &&
        node_backoff_multiplier >= 1.0)) {
    return BadField("node_backoff_multiplier", "finite and >= 1");
  }
  if (!FiniteNonNegative(node_backoff_cap_seconds)) {
    return BadField("node_backoff_cap_seconds", "finite and >= 0");
  }
  if (!FinitePositive(speculation_slowstart)) {
    return BadField("speculation_slowstart", "finite and > 0");
  }
  if (!FiniteNonNegative(straggler_jitter)) {
    return BadField("straggler_jitter", "finite and >= 0");
  }
  if (contraction != "auto" && contraction != "dataflow" &&
      contraction != "incore") {
    return Status::InvalidArgument(
        StrFormat("ClusterConfig: contraction must be \"auto\", \"dataflow\" "
                  "or \"incore\", got \"%s\"",
                  contraction.c_str()));
  }
  if (incore_memory_mb < 1) return BadField("incore_memory_mb", ">= 1");
  if (tucker_sketch != "none" && tucker_sketch != "gaussian" &&
      tucker_sketch != "countsketch") {
    return Status::InvalidArgument(
        StrFormat("ClusterConfig: tucker_sketch must be \"none\", "
                  "\"gaussian\" or \"countsketch\", got \"%s\"",
                  tucker_sketch.c_str()));
  }
  if (sketch_size < 0) return BadField("sketch_size", ">= 0");
  if (exact_polish_sweeps < 0) return BadField("exact_polish_sweeps", ">= 0");
  if (backend != "inprocess" && backend != "subprocess") {
    return Status::InvalidArgument(
        StrFormat("ClusterConfig: backend must be \"inprocess\" or "
                  "\"subprocess\", got \"%s\"",
                  backend.c_str()));
  }
  if (num_workers < 0) return BadField("num_workers", ">= 0");
  if (!FinitePositive(worker_io_timeout_seconds)) {
    return BadField("worker_io_timeout_seconds", "finite and > 0");
  }
  if (inject_worker_kill_after_tasks < 0) {
    return BadField("inject_worker_kill_after_tasks", ">= 0");
  }
  for (size_t i = 0; i < machine_profiles.size(); ++i) {
    const MachineProfile& p = machine_profiles[i];
    if (!FinitePositive(p.speed_factor)) {
      return Status::InvalidArgument(StrFormat(
          "ClusterConfig: machine_profiles[%zu].speed_factor must be "
          "finite and > 0",
          i));
    }
    if (!FiniteNonNegative(p.failure_multiplier)) {
      return Status::InvalidArgument(StrFormat(
          "ClusterConfig: machine_profiles[%zu].failure_multiplier must be "
          "finite and >= 0",
          i));
    }
  }
  return Status::OK();
}

}  // namespace haten2
