#include "mapreduce/stats.h"

#include <algorithm>

#include "util/string_util.h"

namespace haten2 {

TaskSkew SkewOf(std::vector<int64_t> counts) {
  TaskSkew skew;
  skew.tasks = static_cast<int64_t>(counts.size());
  if (counts.empty()) return skew;
  std::sort(counts.begin(), counts.end());
  skew.min_records = counts.front();
  skew.max_records = counts.back();
  skew.p50_records = counts[counts.size() / 2];
  return skew;
}

int64_t PipelineStats::MaxIntermediateRecords() const {
  int64_t m = 0;
  for (const JobStats& j : jobs) m = std::max(m, j.map_output_records);
  return m;
}

uint64_t PipelineStats::MaxIntermediateBytes() const {
  uint64_t m = 0;
  for (const JobStats& j : jobs) m = std::max(m, j.map_output_bytes);
  return m;
}

int64_t PipelineStats::TotalIntermediateRecords() const {
  int64_t t = 0;
  for (const JobStats& j : jobs) t += j.map_output_records;
  return t;
}

uint64_t PipelineStats::TotalIntermediateBytes() const {
  uint64_t t = 0;
  for (const JobStats& j : jobs) t += j.map_output_bytes;
  return t;
}

int64_t PipelineStats::TotalSpilledRecords() const {
  int64_t t = 0;
  for (const JobStats& j : jobs) t += j.spilled_records;
  return t;
}

uint64_t PipelineStats::TotalSpilledRawBytes() const {
  uint64_t t = 0;
  for (const JobStats& j : jobs) t += j.spilled_raw_bytes;
  return t;
}

uint64_t PipelineStats::TotalSpilledCompressedBytes() const {
  uint64_t t = 0;
  for (const JobStats& j : jobs) t += j.spilled_compressed_bytes;
  return t;
}

int64_t PipelineStats::TotalMapTaskRetries() const {
  int64_t t = 0;
  for (const JobStats& j : jobs) t += j.map_task_retries;
  return t;
}

int64_t PipelineStats::NumFailedJobs() const {
  int64_t t = 0;
  for (const JobStats& j : jobs) t += j.failed() ? 1 : 0;
  return t;
}

double PipelineStats::TotalWallSeconds() const {
  double t = 0.0;
  for (const JobStats& j : jobs) t += j.wall_seconds;
  return t;
}

int PipelineStats::MaxScheduledConcurrency() const {
  int m = 0;
  for (const PlanStats& p : plans) {
    m = std::max(m, p.max_observed_concurrency);
  }
  return m;
}

double PipelineStats::TotalCriticalPathSeconds() const {
  double t = 0.0;
  for (const PlanStats& p : plans) t += p.critical_path_seconds;
  return t;
}

double PipelineStats::TotalCriticalPathWithBackoffSeconds() const {
  double t = 0.0;
  for (const PlanStats& p : plans) t += p.critical_path_with_backoff_seconds;
  return t;
}

double PipelineStats::TotalPlanNodeSeconds() const {
  double t = 0.0;
  for (const PlanStats& p : plans) t += p.total_node_seconds;
  return t;
}

int64_t PipelineStats::TotalNodeRetries() const {
  int64_t t = 0;
  for (const PlanStats& p : plans) t += p.total_node_retries;
  return t;
}

double PipelineStats::TotalNodeBackoffSeconds() const {
  double t = 0.0;
  for (const PlanStats& p : plans) t += p.total_backoff_seconds;
  return t;
}

int64_t PipelineStats::IncoreNodes() const {
  int64_t t = 0;
  for (const PlanStats& p : plans) {
    for (const PlanNodeStats& n : p.nodes) {
      if (n.contraction_strategy == "incore") ++t;
    }
  }
  return t;
}

int64_t PipelineStats::DataflowNodes() const {
  int64_t t = 0;
  for (const PlanStats& p : plans) {
    for (const PlanNodeStats& n : p.nodes) {
      if (n.contraction_strategy == "dataflow") ++t;
    }
  }
  return t;
}

void PipelineStats::Append(const PipelineStats& other) {
  jobs.insert(jobs.end(), other.jobs.begin(), other.jobs.end());
  plans.insert(plans.end(), other.plans.begin(), other.plans.end());
  invariant_cache_hits += other.invariant_cache_hits;
  invariant_cache_misses += other.invariant_cache_misses;
}

std::string PipelineStats::ToString() const {
  std::string out = StrFormat(
      "pipeline: %lld jobs, max intermediate %s records (%s), wall %s\n",
      (long long)NumJobs(), HumanCount(MaxIntermediateRecords()).c_str(),
      HumanBytes(MaxIntermediateBytes()).c_str(),
      HumanSeconds(TotalWallSeconds()).c_str());
  for (const JobStats& j : jobs) {
    out += StrFormat(
        "  [%s] in=%s shuffle=%s (%s) groups=%s out=%s wall=%s\n",
        j.name.c_str(), HumanCount(j.map_input_records).c_str(),
        HumanCount(j.map_output_records).c_str(),
        HumanBytes(j.map_output_bytes).c_str(),
        HumanCount(j.reduce_input_groups).c_str(),
        HumanCount(j.reduce_output_records).c_str(),
        HumanSeconds(j.wall_seconds).c_str());
    out += StrFormat(
        "    phases: map=%s combine=%s shuffle=%s reduce=%s",
        HumanSeconds(j.phases.map_seconds).c_str(),
        HumanSeconds(j.phases.combine_seconds).c_str(),
        HumanSeconds(j.phases.shuffle_seconds).c_str(),
        HumanSeconds(j.phases.reduce_seconds).c_str());
    if (j.spilled_records > 0) {
      out += StrFormat(" spilled=%s", HumanCount(j.spilled_records).c_str());
      if (j.spilled_compressed_bytes != j.spilled_raw_bytes) {
        out += StrFormat(" (%s -> %s on disk)",
                         HumanBytes(j.spilled_raw_bytes).c_str(),
                         HumanBytes(j.spilled_compressed_bytes).c_str());
      }
    }
    if (j.map_task_retries > 0) {
      out += StrFormat(" retries=%lld", (long long)j.map_task_retries);
    }
    if (j.failed()) out += StrFormat(" FAILED(%s)", j.failure.c_str());
    out += "\n";
  }
  if (!plans.empty()) {
    out += StrFormat(
        "  plans: %zu scheduled, max concurrency %d, critical path %s of "
        "%s total node time\n",
        plans.size(), MaxScheduledConcurrency(),
        HumanSeconds(TotalCriticalPathSeconds()).c_str(),
        HumanSeconds(TotalPlanNodeSeconds()).c_str());
    if (TotalNodeRetries() > 0) {
      out += StrFormat("  node retries: %lld (backoff %s simulated)\n",
                       (long long)TotalNodeRetries(),
                       HumanSeconds(TotalNodeBackoffSeconds()).c_str());
    }
  }
  if (invariant_cache_hits + invariant_cache_misses > 0) {
    out += StrFormat("  invariant cache: %lld hits, %lld misses\n",
                     (long long)invariant_cache_hits,
                     (long long)invariant_cache_misses);
  }
  return out;
}

}  // namespace haten2
