#include "mapreduce/stats.h"

#include <algorithm>

#include "util/string_util.h"

namespace haten2 {

int64_t PipelineStats::MaxIntermediateRecords() const {
  int64_t m = 0;
  for (const JobStats& j : jobs) m = std::max(m, j.map_output_records);
  return m;
}

uint64_t PipelineStats::MaxIntermediateBytes() const {
  uint64_t m = 0;
  for (const JobStats& j : jobs) m = std::max(m, j.map_output_bytes);
  return m;
}

int64_t PipelineStats::TotalIntermediateRecords() const {
  int64_t t = 0;
  for (const JobStats& j : jobs) t += j.map_output_records;
  return t;
}

double PipelineStats::TotalWallSeconds() const {
  double t = 0.0;
  for (const JobStats& j : jobs) t += j.wall_seconds;
  return t;
}

void PipelineStats::Append(const PipelineStats& other) {
  jobs.insert(jobs.end(), other.jobs.begin(), other.jobs.end());
}

std::string PipelineStats::ToString() const {
  std::string out = StrFormat(
      "pipeline: %lld jobs, max intermediate %s records (%s), wall %s\n",
      (long long)NumJobs(), HumanCount(MaxIntermediateRecords()).c_str(),
      HumanBytes(MaxIntermediateBytes()).c_str(),
      HumanSeconds(TotalWallSeconds()).c_str());
  for (const JobStats& j : jobs) {
    out += StrFormat(
        "  [%s] in=%s shuffle=%s (%s) groups=%s out=%s wall=%s\n",
        j.name.c_str(), HumanCount(j.map_input_records).c_str(),
        HumanCount(j.map_output_records).c_str(),
        HumanBytes(j.map_output_bytes).c_str(),
        HumanCount(j.reduce_input_groups).c_str(),
        HumanCount(j.reduce_output_records).c_str(),
        HumanSeconds(j.wall_seconds).c_str());
  }
  return out;
}

}  // namespace haten2
