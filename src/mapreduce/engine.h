#ifndef HATEN2_MAPREDUCE_ENGINE_H_
#define HATEN2_MAPREDUCE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "distributed/subprocess_job.h"
#include "distributed/worker_pool.h"
#include "mapreduce/cluster.h"
#include "mapreduce/hash.h"
#include "mapreduce/shuffle.h"
#include "mapreduce/spill_codec.h"
#include "mapreduce/stats.h"
#include "util/memory_tracker.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace haten2 {

/// \brief In-process MapReduce engine with Hadoop-shaped semantics.
///
/// A job is (reader, reducer, optional combiner):
///   - the reader is invoked once per input record index and emits
///     intermediate (K, V) pairs — it plays the role of the MAP function
///     over whatever input representation the caller holds (HaTen2 jobs map
///     directly over SparseTensor entries plus factor-matrix rows, exactly
///     as the paper's MAP pseudo-code reads tensor and matrix records);
///   - intermediate pairs are hash-partitioned into
///     ClusterConfig::EffectiveReduceTasks() partitions, grouped by key, and
///     the reducer is invoked once per distinct key with all its values;
///   - the optional combiner (an associative fold over V) runs at the end of
///     each map task, like a Hadoop combiner.
///
/// Every job appends JobStats (shuffled records/bytes = the paper's
/// *intermediate data*) to the engine's pipeline log. Shuffled bytes are
/// charged against ClusterConfig::total_shuffle_memory_bytes; exceeding the
/// budget fails the job with kResourceExhausted ("o.o.m."), reproducing the
/// intermediate-data-explosion failures of Figures 1 and 7.
///
/// Two execution backends share this interface (ClusterConfig::backend):
///   - "inprocess"  — map tasks and reduce partitions run on the engine's
///     thread pool in this process (the default, implemented below);
///   - "subprocess" — ClusterConfig::EffectiveNumWorkers() forked worker
///     processes shard tasks and partitions over Unix-domain sockets
///     (distributed/subprocess_job.h). A worker death surfaces as failure
///     kind "worker_lost" with kAborted, which the PlanScheduler's node
///     retry re-runs — and both backends produce bit-identical output for
///     the same configuration and seeds (docs/ARCHITECTURE.md, Backends).
class Engine {
 public:
  explicit Engine(const ClusterConfig& config)
      : config_(config),
        init_status_(config.Validate()),
        pool_(static_cast<size_t>(std::max(1, config.num_threads))),
        tracker_(config.total_shuffle_memory_bytes == 0
                     ? MemoryTracker::kUnlimited
                     : config.total_shuffle_memory_bytes) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const ClusterConfig& config() const { return config_; }
  MemoryTracker& memory() { return tracker_; }

  /// Log of every job executed since the last ClearPipeline().
  ///
  /// The returned reference is only safe to read while no Run() call or
  /// plan is in flight; under concurrent scheduling use PipelineSnapshot().
  const PipelineStats& pipeline() const { return pipeline_; }

  /// Locked copy of the pipeline log — safe to take while jobs are running
  /// on other threads (each completed job appears atomically).
  PipelineStats PipelineSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pipeline_;
  }

  /// Locked copy restricted to jobs with job_id >= first_job_id (and the
  /// plans whose jobs all fall in that range). This is how drivers
  /// attribute jobs to one ALS iteration: by id watermark, which is stable
  /// under concurrent scheduling, rather than by position in the log.
  PipelineStats PipelineSince(int64_t first_job_id) const {
    std::lock_guard<std::mutex> lock(mu_);
    PipelineStats out;
    for (const JobStats& j : pipeline_.jobs) {
      if (j.job_id >= first_job_id) out.jobs.push_back(j);
    }
    for (const PlanStats& p : pipeline_.plans) {
      // A plan is in range when it has at least one job id and all of them
      // are at or past the watermark. The any_jobs guard matters: a plan
      // whose nodes recorded no job ids (e.g. every node failed before its
      // first job, or an empty plan) would otherwise be vacuously in range
      // and attributed to *every* later iteration.
      bool any_jobs = false;
      bool in_range = true;
      for (const PlanNodeStats& n : p.nodes) {
        for (int64_t id : n.job_ids) {
          any_jobs = true;
          in_range &= id >= first_job_id;
        }
      }
      if (any_jobs && in_range) out.plans.push_back(p);
    }
    return out;
  }

  void ClearPipeline() {
    std::lock_guard<std::mutex> lock(mu_);
    pipeline_.Clear();
  }

  /// The id the next job started on this engine will receive. Taken before
  /// a batch of work, it is the watermark PipelineSince() filters by.
  int64_t NextJobId() const {
    return job_sequence_.load(std::memory_order_relaxed);
  }

  /// The id the next scheduled plan will receive (used by PlanScheduler).
  int64_t TakePlanId() {
    return plan_sequence_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends one scheduled plan's statistics to the pipeline log.
  void RecordPlan(const PlanStats& stats) {
    std::lock_guard<std::mutex> lock(mu_);
    pipeline_.plans.push_back(stats);
  }

  /// Accounts one lookup of the iteration-invariant input-scan cache
  /// (core/contract.h ContractCache) against the pipeline log.
  void NoteInvariantCache(bool hit) {
    std::lock_guard<std::mutex> lock(mu_);
    if (hit) {
      ++pipeline_.invariant_cache_hits;
    } else {
      ++pipeline_.invariant_cache_misses;
    }
  }

  /// \brief RAII plan-execution context for the current thread.
  ///
  /// While alive, every Engine::Run on this thread tags its JobStats with
  /// `plan_id` and appends its job id to `sink` (the scheduler's per-node
  /// job list). The scheduler instantiates one around each node executor;
  /// scopes nest (the previous context is restored on destruction).
  class PlanScope {
   public:
    PlanScope(int64_t plan_id, std::vector<int64_t>* sink)
        : prev_plan_id_(current_plan_id_), prev_sink_(job_id_sink_) {
      current_plan_id_ = plan_id;
      job_id_sink_ = sink;
    }
    ~PlanScope() {
      current_plan_id_ = prev_plan_id_;
      job_id_sink_ = prev_sink_;
    }
    PlanScope(const PlanScope&) = delete;
    PlanScope& operator=(const PlanScope&) = delete;

   private:
    int64_t prev_plan_id_;
    std::vector<int64_t>* prev_sink_;
  };

  /// Runs one MapReduce job.
  ///
  /// \tparam KMid/VMid intermediate key/value (trivially copyable);
  ///         KOut/VOut output key/value.
  /// \param name      job name for the stats log.
  /// \param num_input_records  reader is called for indices [0, n).
  /// \param reader    void(int64_t index, ShuffleEmitter<KMid, VMid>*).
  /// \param reducer   void(const KMid&, std::vector<VMid>&,
  ///                       OutputEmitter<KOut, VOut>*).
  /// \param combiner  optional VMid(const VMid&, const VMid&), associative.
  /// \returns the concatenated reducer outputs (order unspecified).
  template <typename KMid, typename VMid, typename KOut, typename VOut,
            typename ReaderFn, typename ReduceFn>
  Result<std::vector<std::pair<KOut, VOut>>> Run(
      const std::string& name, int64_t num_input_records, ReaderFn&& reader,
      ReduceFn&& reducer,
      std::function<VMid(const VMid&, const VMid&)> combiner = nullptr) {
    // Byte accounting (and hence the o.o.m. semantics) relies on fixed-size
    // intermediate records, mirroring Hadoop's serialized Writables.
    static_assert(IsFixedSizeRecord<KMid>::value,
                  "intermediate keys must be fixed-size records");
    static_assert(IsFixedSizeRecord<VMid>::value,
                  "intermediate values must be fixed-size records");
    constexpr uint64_t kRecordBytes = ShuffleEmitter<KMid, VMid>::kRecordBytes;
    // Fail fast on an invalid cluster configuration (the constructor cannot
    // return a Status): a zero bandwidth or negative slot count would
    // otherwise surface only as Inf/NaN simulated seconds in stats JSON.
    if (!init_status_.ok()) return init_status_;
    if (config_.backend == "subprocess") {
      return RunSubprocess<KMid, VMid, KOut, VOut>(name, num_input_records,
                                                   reader, reducer, combiner);
    }
    WallTimer timer;
    WallTimer phase_timer;
    // Attributes the time since the previous phase boundary to one phase;
    // the segments are contiguous, so they sum to ≈ wall_seconds.
    auto take_phase = [&phase_timer](double* sink) {
      *sink = phase_timer.ElapsedSeconds();
      phase_timer.Restart();
    };
    JobStats stats;
    stats.name = name;
    stats.map_input_records = num_input_records;

    const int num_partitions = config_.EffectiveReduceTasks();
    int num_tasks = config_.EffectiveMapTasks();
    if (num_input_records < num_tasks) {
      num_tasks = static_cast<int>(std::max<int64_t>(1, num_input_records));
    }

    // ---- Map phase ----
    // One sequence number per job, taken exactly once: it keys both the
    // spill-file prefix and the failure-injection decisions. (Taking it in
    // two steps — a load() for the prefix and a later fetch_add() — let two
    // concurrent Run() calls build identical spill prefixes and corrupt each
    // other's spill files.)
    const int64_t job_seq =
        job_sequence_.fetch_add(1, std::memory_order_relaxed);
    stats.job_id = job_seq;
    stats.plan_id = current_plan_id_;
    if (job_id_sink_ != nullptr) job_id_sink_->push_back(job_seq);
    std::vector<ShuffleEmitter<KMid, VMid>> emitters;
    emitters.reserve(static_cast<size_t>(num_tasks));
    for (int t = 0; t < num_tasks; ++t) {
      std::string spill_prefix;
      if (!config_.spill_directory.empty()) {
        spill_prefix = config_.spill_directory + "/haten2_" +
                       std::to_string(reinterpret_cast<uintptr_t>(this)) +
                       "_j" + std::to_string(job_seq) + "_t" +
                       std::to_string(t);
      }
      emitters.emplace_back(num_partitions, &tracker_,
                            std::move(spill_prefix),
                            config_.spill_threshold_records,
                            config_.spill_compression,
                            config_.inject_spill_failure_after_bytes);
    }
    stats.map_task_records.assign(static_cast<size_t>(num_tasks), 0);
    stats.map_task_attempts.assign(static_cast<size_t>(num_tasks), 1);

    std::atomic<bool> task_gave_up{false};
    const int64_t chunk =
        (num_input_records + num_tasks - 1) / std::max(num_tasks, 1);
    pool_.ParallelFor(static_cast<size_t>(num_tasks), [&](size_t t) {
      // Failure injection: a crashed attempt loses its (would-be) output
      // and the task is re-executed, like a Hadoop task retry. Attempts are
      // decided deterministically so runs are reproducible.
      int attempt = 1;
      while (attempt <= config_.max_task_attempts &&
             ShouldFailAttempt(job_seq, t, attempt)) {
        ++attempt;
      }
      stats.map_task_attempts[t] =
          std::min(attempt, config_.max_task_attempts);
      if (attempt > config_.max_task_attempts) {
        task_gave_up.store(true, std::memory_order_relaxed);
        return;
      }
      int64_t begin = static_cast<int64_t>(t) * chunk;
      int64_t end = std::min(begin + chunk, num_input_records);
      int64_t processed = 0;
      for (int64_t i = begin; i < end; ++i) {
        reader(i, &emitters[t]);
        ++processed;
        if (emitters[t].failed()) break;
      }
      emitters[t].Flush();
      // Count records actually handed to the reader: a task killed
      // mid-chunk by the budget must not claim its whole chunk.
      stats.map_task_records[t] = processed;
    });
    for (int attempts : stats.map_task_attempts) {
      stats.map_task_retries += attempts - 1;
    }
    take_phase(&stats.phases.map_seconds);

    // Total bytes charged so far; released when the job finishes.
    auto release_all = [this, &emitters] {
      for (auto& em : emitters) tracker_.Release(em.charged_bytes());
    };

    // Shuffle + spill accounting is captured on *every* exit path, before
    // any spill cleanup: post-mortem stats must describe failed runs (the
    // paper's o.o.m. deaths) as faithfully as successful ones. The
    // per-partition vectors are sized here so a failed job reports its
    // partition count (zero-filled) instead of nothing.
    stats.reduce_partition_records.assign(static_cast<size_t>(num_partitions),
                                          0);
    stats.reduce_partition_bytes.assign(static_cast<size_t>(num_partitions),
                                        0);
    bool exploded = false;
    Status explode_cause = Status::OK();
    int64_t shuffled_records = 0;
    stats.map_task_spilled_bytes.assign(static_cast<size_t>(num_tasks), 0);
    for (size_t t = 0; t < emitters.size(); ++t) {
      auto& em = emitters[t];
      if (em.failed()) {
        exploded = true;
        if (em.failure_status().IsIOError()) {
          explode_cause = em.failure_status();
        }
      }
      shuffled_records += em.TotalRecords();
      stats.spilled_records += em.TotalSpilledRecords();
      stats.map_task_spilled_bytes[t] = em.TotalSpilledDiskBytes();
      stats.spilled_compressed_bytes += em.TotalSpilledDiskBytes();
    }
    stats.pre_combine_records = shuffled_records;
    stats.map_output_records = shuffled_records;
    stats.map_output_bytes =
        static_cast<uint64_t>(shuffled_records) * kRecordBytes;
    // Raw width — what the records occupy once re-expanded, and the byte
    // definition every pre-codec stats consumer relied on;
    // spilled_compressed_bytes above is what actually reached disk.
    stats.spilled_bytes =
        static_cast<uint64_t>(stats.spilled_records) * kRecordBytes;
    stats.spilled_raw_bytes = stats.spilled_bytes;

    // Fails the job: removes spill files (the stats above already captured
    // them), records the job post-mortem, and releases the budget.
    auto fail_job = [&](const char* kind, Status status) -> Status {
      for (auto& em : emitters) em.RemoveAllSpills();
      stats.failure = kind;
      stats.wall_seconds = timer.ElapsedSeconds();
      RecordJob(stats);
      release_all();
      return status;
    };

    if (task_gave_up.load(std::memory_order_relaxed)) {
      return fail_job(
          "aborted",
          Status::Aborted("job '" + name +
                          "': a map task exceeded max_task_attempts"));
    }
    if (exploded) {
      if (explode_cause.ok()) {
        explode_cause = Status::ResourceExhausted(
            "o.o.m.: job '" + name +
            "' exceeded the cluster shuffle-memory budget");
        return fail_job("oom", explode_cause);
      }
      return fail_job("io_error", explode_cause);
    }

    // ---- Combine phase (per map task, per partition) ----
    if (combiner) {
      pool_.ParallelFor(static_cast<size_t>(num_tasks), [&](size_t t) {
        for (auto& buf : emitters[t].buffers()) {
          CombineShuffleBuffer<KMid, VMid>(&buf, combiner);
        }
      });
      // The combiner changed what actually gets shuffled.
      shuffled_records = 0;
      for (auto& em : emitters) shuffled_records += em.TotalRecords();
      stats.map_output_records = shuffled_records;
      stats.map_output_bytes =
          static_cast<uint64_t>(shuffled_records) * kRecordBytes;
      take_phase(&stats.phases.combine_seconds);
    }

    // ---- Shuffle/group phase (parallel over partitions) ----
    struct StdHashAdapter {
      size_t operator()(const KMid& k) const {
        return static_cast<size_t>(ShuffleHash<KMid>()(k));
      }
    };
    using GroupMap =
        std::unordered_map<KMid, std::vector<VMid>, StdHashAdapter>;
    std::vector<GroupMap> partition_groups(
        static_cast<size_t>(num_partitions));

    std::atomic<bool> spill_read_failed{false};
    std::mutex spill_error_mu;
    Status spill_read_status = Status::OK();
    pool_.ParallelFor(static_cast<size_t>(num_partitions), [&](size_t p) {
      GroupMap& groups = partition_groups[p];
      int64_t received = 0;
      for (auto& em : emitters) {
        Status drained = em.DrainSpill(
            p, [&groups, &received](const std::pair<KMid, VMid>& rec) {
              groups[rec.first].push_back(rec.second);
              ++received;
            });
        if (!drained.ok()) {
          spill_read_failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(spill_error_mu);
          if (spill_read_status.ok()) spill_read_status = drained;
        }
        for (auto& rec : em.buffers()[p]) {
          groups[rec.first].push_back(std::move(rec.second));
          ++received;
        }
        em.buffers()[p].clear();
        em.buffers()[p].shrink_to_fit();
      }
      stats.reduce_partition_records[p] = received;
      stats.reduce_partition_bytes[p] =
          static_cast<uint64_t>(received) * kRecordBytes;
    });
    take_phase(&stats.phases.shuffle_seconds);

    if (spill_read_failed.load(std::memory_order_relaxed)) {
      return fail_job(
          "io_error",
          Status::IOError("job '" + name + "': " +
                          spill_read_status.message()));
    }

    // ---- Reduce phase (parallel over partitions) ----
    using PartitionOutput = std::vector<std::pair<KOut, VOut>>;
    std::vector<PartitionOutput> partition_outputs(
        static_cast<size_t>(num_partitions));
    std::vector<int64_t> partition_group_counts(
        static_cast<size_t>(num_partitions), 0);
    pool_.ParallelFor(static_cast<size_t>(num_partitions), [&](size_t p) {
      OutputEmitter<KOut, VOut> out;
      for (auto& [key, values] : partition_groups[p]) {
        reducer(key, values, &out);
      }
      partition_group_counts[p] =
          static_cast<int64_t>(partition_groups[p].size());
      partition_outputs[p] = std::move(out.records());
      partition_groups[p] = GroupMap();  // free as we go
    });

    std::vector<std::pair<KOut, VOut>> output;
    {
      size_t total = 0;
      for (const auto& po : partition_outputs) total += po.size();
      output.reserve(total);
    }
    for (auto& po : partition_outputs) {
      for (auto& rec : po) output.push_back(std::move(rec));
    }
    for (int64_t g : partition_group_counts) stats.reduce_input_groups += g;
    stats.reduce_output_records = static_cast<int64_t>(output.size());
    take_phase(&stats.phases.reduce_seconds);
    stats.wall_seconds = timer.ElapsedSeconds();
    RecordJob(stats);
    release_all();
    return output;
  }

  /// Convenience wrapper: runs a job whose input is an in-memory vector of
  /// (key, value) pairs, with a classic map function signature.
  template <typename KMid, typename VMid, typename KOut, typename VOut,
            typename KIn, typename VIn, typename MapFn, typename ReduceFn>
  Result<std::vector<std::pair<KOut, VOut>>> RunOnPairs(
      const std::string& name, const std::vector<std::pair<KIn, VIn>>& input,
      MapFn&& map_fn, ReduceFn&& reducer,
      std::function<VMid(const VMid&, const VMid&)> combiner = nullptr) {
    return Run<KMid, VMid, KOut, VOut>(
        name, static_cast<int64_t>(input.size()),
        [&input, &map_fn](int64_t i, ShuffleEmitter<KMid, VMid>* em) {
          const auto& rec = input[static_cast<size_t>(i)];
          map_fn(rec.first, rec.second, em);
        },
        std::forward<ReduceFn>(reducer), std::move(combiner));
  }

  /// Per-worker-slot counters of the subprocess backend's worker pool
  /// (empty before the first subprocess job; see haten2-stats-v9 "workers").
  /// Blocks while a subprocess job is in flight.
  std::vector<distributed::WorkerStats> WorkerStatsSnapshot() const {
    std::lock_guard<std::mutex> lock(subprocess_mu_);
    if (worker_pool_ == nullptr) return {};
    return worker_pool_->StatsSnapshot();
  }

 private:
  /// Runs one job on the subprocess backend (config_.backend ==
  /// "subprocess"): forks a worker gang and shards the job over it
  /// (distributed/subprocess_job.h). Jobs are serialized on the engine's
  /// single worker pool; concurrent plan nodes queue here instead of
  /// spawning rival gangs. Output types outside the wire codec's reach run
  /// in-process only and get kUnimplemented — the four ALS drivers' job
  /// types are all covered.
  template <typename KMid, typename VMid, typename KOut, typename VOut,
            typename ReaderFn, typename ReduceFn>
  Result<std::vector<std::pair<KOut, VOut>>> RunSubprocess(
      const std::string& name, int64_t num_input_records, ReaderFn& reader,
      ReduceFn& reducer,
      const std::function<VMid(const VMid&, const VMid&)>& combiner) {
    if constexpr (!distributed::kWireSerializableOutput<KOut, VOut>) {
      return Status::Unimplemented(
          "subprocess backend: job '" + name +
          "' has an output type the wire codec cannot carry (need a "
          "fixed-size key and a fixed-size or vector-of-fixed-size value); "
          "use backend=inprocess for this job");
    } else {
      std::lock_guard<std::mutex> job_lock(subprocess_mu_);
      WallTimer timer;
      JobStats stats;
      stats.name = name;
      stats.map_input_records = num_input_records;
      const int64_t job_seq =
          job_sequence_.fetch_add(1, std::memory_order_relaxed);
      stats.job_id = job_seq;
      stats.plan_id = current_plan_id_;
      if (job_id_sink_ != nullptr) job_id_sink_->push_back(job_seq);

      if (worker_pool_ == nullptr) {
        worker_pool_ = std::make_unique<distributed::WorkerPool>(
            config_.EffectiveNumWorkers());
      }
      distributed::SubprocessJobEnv env;
      env.config = &config_;
      env.pool = worker_pool_.get();
      env.tracker = &tracker_;
      if (!config_.spill_directory.empty()) {
        env.spill_prefix_base =
            config_.spill_directory + "/haten2_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + "_j" +
            std::to_string(job_seq);
      }
      env.name = name;
      env.job_id = job_seq;
      env.num_input_records = num_input_records;

      Result<std::vector<std::pair<KOut, VOut>>> result =
          distributed::RunSubprocessJob<KMid, VMid, KOut, VOut>(
              env, reader, reducer, combiner, &stats);
      stats.wall_seconds = timer.ElapsedSeconds();
      RecordJob(stats);
      return result;
    }
  }

  void RecordJob(const JobStats& stats) {
    std::lock_guard<std::mutex> lock(mu_);
    pipeline_.jobs.push_back(stats);
  }

  /// Deterministic per-(job, task, attempt) failure decision, shared with
  /// the subprocess workers (mapreduce/shuffle.h) so both backends replay
  /// identical retry sequences for the same job id.
  bool ShouldFailAttempt(int64_t job, size_t task, int attempt) const {
    return ShouldFailMapAttempt(config_, job, task, attempt);
  }

  ClusterConfig config_;
  /// Result of config_.Validate(), taken at construction and returned by
  /// every Run() when not OK.
  Status init_status_;
  ThreadPool pool_;
  MemoryTracker tracker_;
  PipelineStats pipeline_;
  /// Subprocess backend state: the pool is created lazily on the first
  /// subprocess job and persists across jobs (its slots carry the restart
  /// counters); subprocess_mu_ serializes subprocess jobs on it.
  std::unique_ptr<distributed::WorkerPool> worker_pool_;
  mutable std::mutex subprocess_mu_;
  mutable std::mutex mu_;
  std::atomic<int64_t> job_sequence_{0};
  std::atomic<int64_t> plan_sequence_{0};

  /// Per-thread plan context installed by PlanScope. thread_local (rather
  /// than a member) because the scheduler runs node executors on its own
  /// threads while unrelated threads may call Run() directly on the same
  /// engine — those direct jobs must stay untagged (plan_id -1).
  inline static thread_local int64_t current_plan_id_ = -1;
  inline static thread_local std::vector<int64_t>* job_id_sink_ = nullptr;
};

}  // namespace haten2

#endif  // HATEN2_MAPREDUCE_ENGINE_H_
