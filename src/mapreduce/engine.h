#ifndef HATEN2_MAPREDUCE_ENGINE_H_
#define HATEN2_MAPREDUCE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/hash.h"
#include "mapreduce/spill_codec.h"
#include "mapreduce/stats.h"
#include "util/memory_tracker.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace haten2 {

/// Fixed-size record trait: byte accounting (and hence the o.o.m.
/// semantics) needs sizeof(T) to be the serialized size. std::pair of
/// fixed-size members qualifies even though the standard does not make it
/// trivially copyable.
template <typename T>
struct IsFixedSizeRecord : std::is_trivially_copyable<T> {};
template <typename A, typename B>
struct IsFixedSizeRecord<std::pair<A, B>>
    : std::conjunction<IsFixedSizeRecord<A>, IsFixedSizeRecord<B>> {};

/// \brief Collects a map task's (key, value) emissions into per-reduce-
/// partition buffers (the in-process equivalent of the Hadoop shuffle
/// write path).
///
/// Emissions are charged incrementally against the engine's memory budget in
/// chunks; once the budget is exhausted the emitter enters a failed state and
/// silently drops further records — the engine then fails the whole job with
/// kResourceExhausted. This reproduces the paper's intermediate-data
/// explosion: a job whose shuffle exceeds cluster memory dies mid-flight.
template <typename K, typename V>
class ShuffleEmitter {
 public:
  using Record = std::pair<K, V>;
  static constexpr int64_t kChargeChunkRecords = 4096;
  /// Serialized width of one intermediate record. Spill files are written
  /// as raw Record structs, so sizeof(Record) — padding included — is the
  /// width a record actually occupies on disk; the same width is charged
  /// against the shuffle budget and reported in every byte counter, keeping
  /// "bytes" in stats equal to bytes observable outside the process
  /// (docs/INTERNALS.md, Accounting).
  static constexpr uint64_t kRecordBytes = sizeof(Record);

  /// `spill_prefix` empty disables spilling; otherwise a partition's buffer
  /// is appended to "<spill_prefix>_p<partition>.spill" and cleared once it
  /// holds `spill_threshold` records (Hadoop's sort-spill), bounding the
  /// task's resident memory. Spilled records remain charged against the
  /// budget: it models the cluster's total intermediate-data capacity.
  /// `compression` selects the on-disk run encoding (spill_codec.h);
  /// `inject_failure_after_bytes` > 0 tears the spill write that would pass
  /// that cumulative byte count (failure injection, see ClusterConfig).
  ShuffleEmitter(int num_partitions, MemoryTracker* tracker,
                 std::string spill_prefix = "",
                 int64_t spill_threshold = 0,
                 SpillCompression compression = SpillCompression::kNone,
                 int64_t inject_failure_after_bytes = 0)
      : buffers_(static_cast<size_t>(num_partitions)),
        spilled_counts_(static_cast<size_t>(num_partitions), 0),
        spilled_disk_bytes_(static_cast<size_t>(num_partitions), 0),
        tracker_(tracker),
        spill_prefix_(std::move(spill_prefix)),
        spill_threshold_(spill_threshold),
        compression_(compression),
        inject_failure_after_bytes_(inject_failure_after_bytes) {}

  void Emit(const K& key, const V& value) {
    if (failed_) return;
    if (uncharged_records_ == kChargeChunkRecords) {
      if (!ChargePending()) return;
    }
    size_t p = static_cast<size_t>(ShuffleHash<K>()(key) % buffers_.size());
    buffers_[p].emplace_back(key, value);
    ++uncharged_records_;
    if (!spill_prefix_.empty() && spill_threshold_ > 0 &&
        static_cast<int64_t>(buffers_[p].size()) >= spill_threshold_) {
      SpillPartition(p);
    }
  }

  /// Charges any pending records; returns false when the budget is blown.
  bool Flush() { return ChargePending(); }

  bool failed() const { return failed_; }
  const Status& failure_status() const { return failure_status_; }
  uint64_t charged_bytes() const { return charged_bytes_; }

  int64_t TotalRecords() const {
    int64_t n = TotalSpilledRecords();
    for (const auto& b : buffers_) n += static_cast<int64_t>(b.size());
    return n;
  }

  int64_t InMemoryRecords() const {
    int64_t n = 0;
    for (const auto& b : buffers_) n += static_cast<int64_t>(b.size());
    return n;
  }

  int64_t TotalSpilledRecords() const {
    int64_t n = 0;
    for (int64_t c : spilled_counts_) n += c;
    return n;
  }

  int64_t SpilledRecords(size_t partition) const {
    return spilled_counts_[partition];
  }

  /// Bytes this emitter's spill runs occupy on disk (compressed width;
  /// equals TotalSpilledRecords() * kRecordBytes when compression is none).
  uint64_t TotalSpilledDiskBytes() const {
    uint64_t n = 0;
    for (uint64_t b : spilled_disk_bytes_) n += b;
    return n;
  }

  std::string SpillPath(size_t partition) const {
    return spill_prefix_ + "_p" + std::to_string(partition) + ".spill";
  }

  /// Streams partition `p`'s spilled records (if any) into `consume`, then
  /// removes the spill file. On a read error returns an IOError naming the
  /// spill path and the failing byte offset, and leaves `spilled_counts_`
  /// intact so RemoveSpill / RemoveAllSpills still clean the file up.
  template <typename ConsumeFn>
  Status DrainSpill(size_t p, ConsumeFn&& consume) {
    if (spilled_counts_[p] == 0) return Status::OK();
    const std::string path = SpillPath(p);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::IOError("cannot open spill file " + path);
    }
    if (compression_ == SpillCompression::kNone) {
      Record rec;
      for (int64_t i = 0; i < spilled_counts_[p]; ++i) {
        in.read(reinterpret_cast<char*>(&rec), sizeof(Record));
        if (in.gcount() != static_cast<std::streamsize>(sizeof(Record))) {
          return Status::IOError(
              "short read in spill file " + path + " at offset " +
              std::to_string(static_cast<uint64_t>(i) * sizeof(Record)));
        }
        consume(rec);
      }
    } else {
      Status s = DrainCompressedSpill(p, in, path, consume);
      if (!s.ok()) return s;
    }
    in.close();
    RemoveSpill(p);
    return Status::OK();
  }

  void RemoveSpill(size_t p) {
    if (spilled_counts_[p] > 0) {
      std::remove(SpillPath(p).c_str());
      spilled_counts_[p] = 0;
      spilled_disk_bytes_[p] = 0;
    }
  }

  void RemoveAllSpills() {
    for (size_t p = 0; p < spilled_counts_.size(); ++p) RemoveSpill(p);
  }

  std::vector<std::vector<Record>>& buffers() { return buffers_; }

 private:
  void SpillPartition(size_t p) {
    const char* data = reinterpret_cast<const char*>(buffers_[p].data());
    size_t nbytes = buffers_[p].size() * sizeof(Record);
    std::string encoded;
    if (compression_ == SpillCompression::kDeltaVarint) {
      EncodeSpillBlock(data, buffers_[p].size(), sizeof(Record), sizeof(K),
                       &encoded);
      data = encoded.data();
      nbytes = encoded.size();
    }
    const std::string path = SpillPath(p);
    if (!WriteSpillBytes(path, data, nbytes)) {
      // A partial append leaves a torn file whose tail no reader can parse.
      // Roll the file back to the last committed run boundary — or remove
      // it outright when nothing was committed — *before* failing, so
      // RemoveAllSpills (keyed on spilled_counts_) cannot leak an orphan.
      std::error_code ec;
      if (spilled_disk_bytes_[p] == 0) {
        std::filesystem::remove(path, ec);
      } else {
        std::filesystem::resize_file(path, spilled_disk_bytes_[p], ec);
        if (ec) {
          std::filesystem::remove(path, ec);
          spilled_counts_[p] = 0;
          spilled_disk_bytes_[p] = 0;
        }
      }
      failed_ = true;
      failure_status_ = Status::IOError("spill write failed: " + path);
      return;
    }
    spilled_counts_[p] += static_cast<int64_t>(buffers_[p].size());
    spilled_disk_bytes_[p] += static_cast<uint64_t>(nbytes);
    buffers_[p].clear();
  }

  /// Appends `nbytes` to the spill file; false on failure. The injection
  /// knob tears the write that would pass the configured cumulative byte
  /// count: half the bytes land on disk, as a mid-write disk-full would
  /// leave them.
  bool WriteSpillBytes(const std::string& path, const char* data,
                       size_t nbytes) {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) return false;
    if (inject_failure_after_bytes_ > 0 &&
        spill_bytes_written_ + static_cast<int64_t>(nbytes) >
            inject_failure_after_bytes_) {
      out.write(data, static_cast<std::streamsize>(nbytes / 2));
      out.flush();
      return false;
    }
    out.write(data, static_cast<std::streamsize>(nbytes));
    out.flush();
    if (!out) return false;
    spill_bytes_written_ += static_cast<int64_t>(nbytes);
    return true;
  }

  /// Block-decoding drain loop for delta_varint spill files: reads
  /// header + payload per run until every spilled record is consumed,
  /// validating counts against `spilled_counts_[p]` as it goes.
  template <typename ConsumeFn>
  Status DrainCompressedSpill(size_t p, std::ifstream& in,
                              const std::string& path, ConsumeFn&& consume) {
    int64_t remaining = spilled_counts_[p];
    uint64_t offset = 0;
    char header_buf[kSpillBlockHeaderBytes];
    std::string payload;
    std::string decoded;
    while (remaining > 0) {
      const std::string context =
          path + " at offset " + std::to_string(offset);
      in.read(header_buf, kSpillBlockHeaderBytes);
      if (in.gcount() !=
          static_cast<std::streamsize>(kSpillBlockHeaderBytes)) {
        return Status::IOError("truncated spill block header in " + context);
      }
      Result<SpillBlockHeader> header = ParseSpillBlockHeader(
          header_buf, kSpillBlockHeaderBytes, context);
      if (!header.ok()) return header.status();
      if (static_cast<int64_t>(header->record_count) > remaining) {
        return Status::IOError("spill block overruns the spilled record "
                               "count in " +
                               context);
      }
      payload.resize(header->payload_bytes);
      in.read(payload.data(),
              static_cast<std::streamsize>(header->payload_bytes));
      if (in.gcount() !=
          static_cast<std::streamsize>(header->payload_bytes)) {
        return Status::IOError("truncated spill block payload in " + context);
      }
      decoded.clear();
      HATEN2_RETURN_IF_ERROR(DecodeSpillBlockPayload(
          *header, payload.data(), payload.size(), sizeof(Record), sizeof(K),
          context, &decoded));
      Record rec;
      for (uint64_t i = 0; i < header->record_count; ++i) {
        // void* cast: IsFixedSizeRecord guarantees Record is memcpy-safe
        // even where std::pair is formally non-trivially-copyable.
        std::memcpy(static_cast<void*>(&rec),
                    decoded.data() + i * sizeof(Record), sizeof(Record));
        consume(rec);
      }
      remaining -= static_cast<int64_t>(header->record_count);
      offset += kSpillBlockHeaderBytes + header->payload_bytes;
    }
    return Status::OK();
  }

  bool ChargePending() {
    if (failed_) return false;
    if (uncharged_records_ == 0) return true;
    uint64_t bytes = static_cast<uint64_t>(uncharged_records_) * kRecordBytes;
    if (tracker_ != nullptr) {
      Status s = tracker_->Charge(bytes);
      if (!s.ok()) {
        failed_ = true;
        failure_status_ = Status::ResourceExhausted(s.message());
        return false;
      }
    }
    charged_bytes_ += bytes;
    uncharged_records_ = 0;
    return true;
  }

  std::vector<std::vector<Record>> buffers_;
  std::vector<int64_t> spilled_counts_;
  /// Bytes committed to each partition's spill file (compressed width) —
  /// the truncation point a torn write rolls back to, and the disk traffic
  /// the CostModel charges.
  std::vector<uint64_t> spilled_disk_bytes_;
  MemoryTracker* tracker_;
  std::string spill_prefix_;
  int64_t spill_threshold_ = 0;
  SpillCompression compression_ = SpillCompression::kNone;
  int64_t inject_failure_after_bytes_ = 0;
  int64_t spill_bytes_written_ = 0;
  int64_t uncharged_records_ = 0;
  uint64_t charged_bytes_ = 0;
  bool failed_ = false;
  Status failure_status_;
};

/// \brief Collects reducer output records.
template <typename K, typename V>
class OutputEmitter {
 public:
  void Emit(const K& key, V value) {
    out_.emplace_back(key, std::move(value));
  }
  std::vector<std::pair<K, V>>& records() { return out_; }

 private:
  std::vector<std::pair<K, V>> out_;
};

/// \brief In-process MapReduce engine with Hadoop-shaped semantics.
///
/// A job is (reader, reducer, optional combiner):
///   - the reader is invoked once per input record index and emits
///     intermediate (K, V) pairs — it plays the role of the MAP function
///     over whatever input representation the caller holds (HaTen2 jobs map
///     directly over SparseTensor entries plus factor-matrix rows, exactly
///     as the paper's MAP pseudo-code reads tensor and matrix records);
///   - intermediate pairs are hash-partitioned into
///     ClusterConfig::EffectiveReduceTasks() partitions, grouped by key, and
///     the reducer is invoked once per distinct key with all its values;
///   - the optional combiner (an associative fold over V) runs at the end of
///     each map task, like a Hadoop combiner.
///
/// Every job appends JobStats (shuffled records/bytes = the paper's
/// *intermediate data*) to the engine's pipeline log. Shuffled bytes are
/// charged against ClusterConfig::total_shuffle_memory_bytes; exceeding the
/// budget fails the job with kResourceExhausted ("o.o.m."), reproducing the
/// intermediate-data-explosion failures of Figures 1 and 7.
class Engine {
 public:
  explicit Engine(const ClusterConfig& config)
      : config_(config),
        init_status_(config.Validate()),
        pool_(static_cast<size_t>(std::max(1, config.num_threads))),
        tracker_(config.total_shuffle_memory_bytes == 0
                     ? MemoryTracker::kUnlimited
                     : config.total_shuffle_memory_bytes) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const ClusterConfig& config() const { return config_; }
  MemoryTracker& memory() { return tracker_; }

  /// Log of every job executed since the last ClearPipeline().
  ///
  /// The returned reference is only safe to read while no Run() call or
  /// plan is in flight; under concurrent scheduling use PipelineSnapshot().
  const PipelineStats& pipeline() const { return pipeline_; }

  /// Locked copy of the pipeline log — safe to take while jobs are running
  /// on other threads (each completed job appears atomically).
  PipelineStats PipelineSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pipeline_;
  }

  /// Locked copy restricted to jobs with job_id >= first_job_id (and the
  /// plans whose jobs all fall in that range). This is how drivers
  /// attribute jobs to one ALS iteration: by id watermark, which is stable
  /// under concurrent scheduling, rather than by position in the log.
  PipelineStats PipelineSince(int64_t first_job_id) const {
    std::lock_guard<std::mutex> lock(mu_);
    PipelineStats out;
    for (const JobStats& j : pipeline_.jobs) {
      if (j.job_id >= first_job_id) out.jobs.push_back(j);
    }
    for (const PlanStats& p : pipeline_.plans) {
      bool in_range = true;
      for (const PlanNodeStats& n : p.nodes) {
        for (int64_t id : n.job_ids) in_range &= id >= first_job_id;
      }
      if (in_range) out.plans.push_back(p);
    }
    return out;
  }

  void ClearPipeline() {
    std::lock_guard<std::mutex> lock(mu_);
    pipeline_.Clear();
  }

  /// The id the next job started on this engine will receive. Taken before
  /// a batch of work, it is the watermark PipelineSince() filters by.
  int64_t NextJobId() const {
    return job_sequence_.load(std::memory_order_relaxed);
  }

  /// The id the next scheduled plan will receive (used by PlanScheduler).
  int64_t TakePlanId() {
    return plan_sequence_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends one scheduled plan's statistics to the pipeline log.
  void RecordPlan(const PlanStats& stats) {
    std::lock_guard<std::mutex> lock(mu_);
    pipeline_.plans.push_back(stats);
  }

  /// Accounts one lookup of the iteration-invariant input-scan cache
  /// (core/contract.h ContractCache) against the pipeline log.
  void NoteInvariantCache(bool hit) {
    std::lock_guard<std::mutex> lock(mu_);
    if (hit) {
      ++pipeline_.invariant_cache_hits;
    } else {
      ++pipeline_.invariant_cache_misses;
    }
  }

  /// \brief RAII plan-execution context for the current thread.
  ///
  /// While alive, every Engine::Run on this thread tags its JobStats with
  /// `plan_id` and appends its job id to `sink` (the scheduler's per-node
  /// job list). The scheduler instantiates one around each node executor;
  /// scopes nest (the previous context is restored on destruction).
  class PlanScope {
   public:
    PlanScope(int64_t plan_id, std::vector<int64_t>* sink)
        : prev_plan_id_(current_plan_id_), prev_sink_(job_id_sink_) {
      current_plan_id_ = plan_id;
      job_id_sink_ = sink;
    }
    ~PlanScope() {
      current_plan_id_ = prev_plan_id_;
      job_id_sink_ = prev_sink_;
    }
    PlanScope(const PlanScope&) = delete;
    PlanScope& operator=(const PlanScope&) = delete;

   private:
    int64_t prev_plan_id_;
    std::vector<int64_t>* prev_sink_;
  };

  /// Runs one MapReduce job.
  ///
  /// \tparam KMid/VMid intermediate key/value (trivially copyable);
  ///         KOut/VOut output key/value.
  /// \param name      job name for the stats log.
  /// \param num_input_records  reader is called for indices [0, n).
  /// \param reader    void(int64_t index, ShuffleEmitter<KMid, VMid>*).
  /// \param reducer   void(const KMid&, std::vector<VMid>&,
  ///                       OutputEmitter<KOut, VOut>*).
  /// \param combiner  optional VMid(const VMid&, const VMid&), associative.
  /// \returns the concatenated reducer outputs (order unspecified).
  template <typename KMid, typename VMid, typename KOut, typename VOut,
            typename ReaderFn, typename ReduceFn>
  Result<std::vector<std::pair<KOut, VOut>>> Run(
      const std::string& name, int64_t num_input_records, ReaderFn&& reader,
      ReduceFn&& reducer,
      std::function<VMid(const VMid&, const VMid&)> combiner = nullptr) {
    // Byte accounting (and hence the o.o.m. semantics) relies on fixed-size
    // intermediate records, mirroring Hadoop's serialized Writables.
    static_assert(IsFixedSizeRecord<KMid>::value,
                  "intermediate keys must be fixed-size records");
    static_assert(IsFixedSizeRecord<VMid>::value,
                  "intermediate values must be fixed-size records");
    constexpr uint64_t kRecordBytes = ShuffleEmitter<KMid, VMid>::kRecordBytes;
    // Fail fast on an invalid cluster configuration (the constructor cannot
    // return a Status): a zero bandwidth or negative slot count would
    // otherwise surface only as Inf/NaN simulated seconds in stats JSON.
    if (!init_status_.ok()) return init_status_;
    WallTimer timer;
    WallTimer phase_timer;
    // Attributes the time since the previous phase boundary to one phase;
    // the segments are contiguous, so they sum to ≈ wall_seconds.
    auto take_phase = [&phase_timer](double* sink) {
      *sink = phase_timer.ElapsedSeconds();
      phase_timer.Restart();
    };
    JobStats stats;
    stats.name = name;
    stats.map_input_records = num_input_records;

    const int num_partitions = config_.EffectiveReduceTasks();
    int num_tasks = config_.EffectiveMapTasks();
    if (num_input_records < num_tasks) {
      num_tasks = static_cast<int>(std::max<int64_t>(1, num_input_records));
    }

    // ---- Map phase ----
    // One sequence number per job, taken exactly once: it keys both the
    // spill-file prefix and the failure-injection decisions. (Taking it in
    // two steps — a load() for the prefix and a later fetch_add() — let two
    // concurrent Run() calls build identical spill prefixes and corrupt each
    // other's spill files.)
    const int64_t job_seq =
        job_sequence_.fetch_add(1, std::memory_order_relaxed);
    stats.job_id = job_seq;
    stats.plan_id = current_plan_id_;
    if (job_id_sink_ != nullptr) job_id_sink_->push_back(job_seq);
    std::vector<ShuffleEmitter<KMid, VMid>> emitters;
    emitters.reserve(static_cast<size_t>(num_tasks));
    for (int t = 0; t < num_tasks; ++t) {
      std::string spill_prefix;
      if (!config_.spill_directory.empty()) {
        spill_prefix = config_.spill_directory + "/haten2_" +
                       std::to_string(reinterpret_cast<uintptr_t>(this)) +
                       "_j" + std::to_string(job_seq) + "_t" +
                       std::to_string(t);
      }
      emitters.emplace_back(num_partitions, &tracker_,
                            std::move(spill_prefix),
                            config_.spill_threshold_records,
                            config_.spill_compression,
                            config_.inject_spill_failure_after_bytes);
    }
    stats.map_task_records.assign(static_cast<size_t>(num_tasks), 0);
    stats.map_task_attempts.assign(static_cast<size_t>(num_tasks), 1);

    std::atomic<bool> task_gave_up{false};
    const int64_t chunk =
        (num_input_records + num_tasks - 1) / std::max(num_tasks, 1);
    pool_.ParallelFor(static_cast<size_t>(num_tasks), [&](size_t t) {
      // Failure injection: a crashed attempt loses its (would-be) output
      // and the task is re-executed, like a Hadoop task retry. Attempts are
      // decided deterministically so runs are reproducible.
      int attempt = 1;
      while (attempt <= config_.max_task_attempts &&
             ShouldFailAttempt(job_seq, t, attempt)) {
        ++attempt;
      }
      stats.map_task_attempts[t] =
          std::min(attempt, config_.max_task_attempts);
      if (attempt > config_.max_task_attempts) {
        task_gave_up.store(true, std::memory_order_relaxed);
        return;
      }
      int64_t begin = static_cast<int64_t>(t) * chunk;
      int64_t end = std::min(begin + chunk, num_input_records);
      int64_t processed = 0;
      for (int64_t i = begin; i < end; ++i) {
        reader(i, &emitters[t]);
        ++processed;
        if (emitters[t].failed()) break;
      }
      emitters[t].Flush();
      // Count records actually handed to the reader: a task killed
      // mid-chunk by the budget must not claim its whole chunk.
      stats.map_task_records[t] = processed;
    });
    for (int attempts : stats.map_task_attempts) {
      stats.map_task_retries += attempts - 1;
    }
    take_phase(&stats.phases.map_seconds);

    // Total bytes charged so far; released when the job finishes.
    auto release_all = [this, &emitters] {
      for (auto& em : emitters) tracker_.Release(em.charged_bytes());
    };

    // Shuffle + spill accounting is captured on *every* exit path, before
    // any spill cleanup: post-mortem stats must describe failed runs (the
    // paper's o.o.m. deaths) as faithfully as successful ones. The
    // per-partition vectors are sized here so a failed job reports its
    // partition count (zero-filled) instead of nothing.
    stats.reduce_partition_records.assign(static_cast<size_t>(num_partitions),
                                          0);
    stats.reduce_partition_bytes.assign(static_cast<size_t>(num_partitions),
                                        0);
    bool exploded = false;
    Status explode_cause = Status::OK();
    int64_t shuffled_records = 0;
    stats.map_task_spilled_bytes.assign(static_cast<size_t>(num_tasks), 0);
    for (size_t t = 0; t < emitters.size(); ++t) {
      auto& em = emitters[t];
      if (em.failed()) {
        exploded = true;
        if (em.failure_status().IsIOError()) {
          explode_cause = em.failure_status();
        }
      }
      shuffled_records += em.TotalRecords();
      stats.spilled_records += em.TotalSpilledRecords();
      stats.map_task_spilled_bytes[t] = em.TotalSpilledDiskBytes();
      stats.spilled_compressed_bytes += em.TotalSpilledDiskBytes();
    }
    stats.pre_combine_records = shuffled_records;
    stats.map_output_records = shuffled_records;
    stats.map_output_bytes =
        static_cast<uint64_t>(shuffled_records) * kRecordBytes;
    // Raw width — what the records occupy once re-expanded, and the byte
    // definition every pre-codec stats consumer relied on;
    // spilled_compressed_bytes above is what actually reached disk.
    stats.spilled_bytes =
        static_cast<uint64_t>(stats.spilled_records) * kRecordBytes;
    stats.spilled_raw_bytes = stats.spilled_bytes;

    // Fails the job: removes spill files (the stats above already captured
    // them), records the job post-mortem, and releases the budget.
    auto fail_job = [&](const char* kind, Status status) -> Status {
      for (auto& em : emitters) em.RemoveAllSpills();
      stats.failure = kind;
      stats.wall_seconds = timer.ElapsedSeconds();
      RecordJob(stats);
      release_all();
      return status;
    };

    if (task_gave_up.load(std::memory_order_relaxed)) {
      return fail_job(
          "aborted",
          Status::Aborted("job '" + name +
                          "': a map task exceeded max_task_attempts"));
    }
    if (exploded) {
      if (explode_cause.ok()) {
        explode_cause = Status::ResourceExhausted(
            "o.o.m.: job '" + name +
            "' exceeded the cluster shuffle-memory budget");
        return fail_job("oom", explode_cause);
      }
      return fail_job("io_error", explode_cause);
    }

    // ---- Combine phase (per map task, per partition) ----
    if (combiner) {
      pool_.ParallelFor(static_cast<size_t>(num_tasks), [&](size_t t) {
        for (auto& buf : emitters[t].buffers()) {
          CombineBuffer<KMid, VMid>(&buf, combiner);
        }
      });
      // The combiner changed what actually gets shuffled.
      shuffled_records = 0;
      for (auto& em : emitters) shuffled_records += em.TotalRecords();
      stats.map_output_records = shuffled_records;
      stats.map_output_bytes =
          static_cast<uint64_t>(shuffled_records) * kRecordBytes;
      take_phase(&stats.phases.combine_seconds);
    }

    // ---- Shuffle/group phase (parallel over partitions) ----
    struct StdHashAdapter {
      size_t operator()(const KMid& k) const {
        return static_cast<size_t>(ShuffleHash<KMid>()(k));
      }
    };
    using GroupMap =
        std::unordered_map<KMid, std::vector<VMid>, StdHashAdapter>;
    std::vector<GroupMap> partition_groups(
        static_cast<size_t>(num_partitions));

    std::atomic<bool> spill_read_failed{false};
    std::mutex spill_error_mu;
    Status spill_read_status = Status::OK();
    pool_.ParallelFor(static_cast<size_t>(num_partitions), [&](size_t p) {
      GroupMap& groups = partition_groups[p];
      int64_t received = 0;
      for (auto& em : emitters) {
        Status drained = em.DrainSpill(
            p, [&groups, &received](const std::pair<KMid, VMid>& rec) {
              groups[rec.first].push_back(rec.second);
              ++received;
            });
        if (!drained.ok()) {
          spill_read_failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(spill_error_mu);
          if (spill_read_status.ok()) spill_read_status = drained;
        }
        for (auto& rec : em.buffers()[p]) {
          groups[rec.first].push_back(std::move(rec.second));
          ++received;
        }
        em.buffers()[p].clear();
        em.buffers()[p].shrink_to_fit();
      }
      stats.reduce_partition_records[p] = received;
      stats.reduce_partition_bytes[p] =
          static_cast<uint64_t>(received) * kRecordBytes;
    });
    take_phase(&stats.phases.shuffle_seconds);

    if (spill_read_failed.load(std::memory_order_relaxed)) {
      return fail_job(
          "io_error",
          Status::IOError("job '" + name + "': " +
                          spill_read_status.message()));
    }

    // ---- Reduce phase (parallel over partitions) ----
    using PartitionOutput = std::vector<std::pair<KOut, VOut>>;
    std::vector<PartitionOutput> partition_outputs(
        static_cast<size_t>(num_partitions));
    std::vector<int64_t> partition_group_counts(
        static_cast<size_t>(num_partitions), 0);
    pool_.ParallelFor(static_cast<size_t>(num_partitions), [&](size_t p) {
      OutputEmitter<KOut, VOut> out;
      for (auto& [key, values] : partition_groups[p]) {
        reducer(key, values, &out);
      }
      partition_group_counts[p] =
          static_cast<int64_t>(partition_groups[p].size());
      partition_outputs[p] = std::move(out.records());
      partition_groups[p] = GroupMap();  // free as we go
    });

    std::vector<std::pair<KOut, VOut>> output;
    {
      size_t total = 0;
      for (const auto& po : partition_outputs) total += po.size();
      output.reserve(total);
    }
    for (auto& po : partition_outputs) {
      for (auto& rec : po) output.push_back(std::move(rec));
    }
    for (int64_t g : partition_group_counts) stats.reduce_input_groups += g;
    stats.reduce_output_records = static_cast<int64_t>(output.size());
    take_phase(&stats.phases.reduce_seconds);
    stats.wall_seconds = timer.ElapsedSeconds();
    RecordJob(stats);
    release_all();
    return output;
  }

  /// Convenience wrapper: runs a job whose input is an in-memory vector of
  /// (key, value) pairs, with a classic map function signature.
  template <typename KMid, typename VMid, typename KOut, typename VOut,
            typename KIn, typename VIn, typename MapFn, typename ReduceFn>
  Result<std::vector<std::pair<KOut, VOut>>> RunOnPairs(
      const std::string& name, const std::vector<std::pair<KIn, VIn>>& input,
      MapFn&& map_fn, ReduceFn&& reducer,
      std::function<VMid(const VMid&, const VMid&)> combiner = nullptr) {
    return Run<KMid, VMid, KOut, VOut>(
        name, static_cast<int64_t>(input.size()),
        [&input, &map_fn](int64_t i, ShuffleEmitter<KMid, VMid>* em) {
          const auto& rec = input[static_cast<size_t>(i)];
          map_fn(rec.first, rec.second, em);
        },
        std::forward<ReduceFn>(reducer), std::move(combiner));
  }

 private:
  template <typename K, typename V>
  static void CombineBuffer(std::vector<std::pair<K, V>>* buf,
                            const std::function<V(const V&, const V&)>& fold) {
    if (buf->size() <= 1) return;
    struct StdHashAdapter {
      size_t operator()(const K& k) const {
        return static_cast<size_t>(ShuffleHash<K>()(k));
      }
    };
    std::unordered_map<K, V, StdHashAdapter> merged;
    merged.reserve(buf->size());
    for (auto& rec : *buf) {
      auto [it, inserted] = merged.try_emplace(rec.first, rec.second);
      if (!inserted) it->second = fold(it->second, rec.second);
    }
    buf->clear();
    buf->reserve(merged.size());
    for (auto& [k, v] : merged) buf->emplace_back(k, std::move(v));
  }

  void RecordJob(const JobStats& stats) {
    std::lock_guard<std::mutex> lock(mu_);
    pipeline_.jobs.push_back(stats);
  }

  /// Deterministic per-(job, task, attempt) failure decision.
  bool ShouldFailAttempt(int64_t job, size_t task, int attempt) const {
    if (config_.task_failure_probability <= 0.0) return false;
    uint64_t h = Mix64(config_.failure_seed ^
                       Mix64(static_cast<uint64_t>(job) * 1000003ull +
                             static_cast<uint64_t>(task) * 1009ull +
                             static_cast<uint64_t>(attempt)));
    double u = static_cast<double>(h >> 11) *
               (1.0 / 9007199254740992.0);  // 53-bit uniform in [0, 1)
    return u < config_.task_failure_probability;
  }

  ClusterConfig config_;
  /// Result of config_.Validate(), taken at construction and returned by
  /// every Run() when not OK.
  Status init_status_;
  ThreadPool pool_;
  MemoryTracker tracker_;
  PipelineStats pipeline_;
  mutable std::mutex mu_;
  std::atomic<int64_t> job_sequence_{0};
  std::atomic<int64_t> plan_sequence_{0};

  /// Per-thread plan context installed by PlanScope. thread_local (rather
  /// than a member) because the scheduler runs node executors on its own
  /// threads while unrelated threads may call Run() directly on the same
  /// engine — those direct jobs must stay untagged (plan_id -1).
  inline static thread_local int64_t current_plan_id_ = -1;
  inline static thread_local std::vector<int64_t>* job_id_sink_ = nullptr;
};

}  // namespace haten2

#endif  // HATEN2_MAPREDUCE_ENGINE_H_
