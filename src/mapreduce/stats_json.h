#ifndef HATEN2_MAPREDUCE_STATS_JSON_H_
#define HATEN2_MAPREDUCE_STATS_JSON_H_

#include <string>
#include <vector>

#include "distributed/worker_pool.h"
#include "mapreduce/cluster.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/stats.h"
#include "util/json_writer.h"
#include "util/result.h"

namespace haten2 {

/// JSON serialization of the engine's and drivers' statistics — the stable
/// "haten2-stats-v9" schema documented in docs/INTERNALS.md. The schema is
/// what --stats_json and the BENCH_*.json harness exports emit, so the
/// perf trajectory can be read by machines across PRs.
///
/// v2 extends v1 (purely additive) with the dataflow-plan layer: jobs carry
/// job_id/plan_id, pipelines carry a plans array plus scheduling aggregates
/// (scheduled_concurrency, critical_path_seconds, total_node_seconds) and
/// the invariant input-scan cache counters, and the cluster object carries
/// max_concurrent_jobs.
///
/// v3 extends v2 (purely additive) with plan-level recovery: plan nodes
/// carry attempts/backoff_seconds, plans carry
/// total_node_retries/total_backoff_seconds, pipelines carry
/// node_retries/node_backoff_seconds, and the cluster object carries
/// max_node_attempts.
///
/// v5 extends v4 (purely additive) with heterogeneous clusters and
/// speculative execution: jobs and pipelines carry speculation counters
/// (cost-model-gated, like simulated_seconds), plans and pipelines carry
/// critical_path_with_backoff_seconds, and the cluster object carries the
/// speculation knobs plus a run-length-grouped machine_profiles summary.
///
/// v6 extends v5 (purely additive) with the subprocess backend: the
/// cluster object carries backend/num_workers, the report carries a
/// `workers` array of per-worker-slot counters (tasks, wire bytes
/// sent/received, restarts — additive over the engine's lifetime), and
/// jobs may report the new failure kind "worker_lost".
///
/// v9 extends v8 (purely additive) with the ingest → refit loop: the
/// report may carry a `refit` object (epoch/staleness counters plus
/// cumulative merge/refit cost — see RefitStatsReport below), emitted by
/// `haten2_cli --ingest_log` and `haten2_serve --refit_loop`.
///
/// All byte counters use the engine's serialized record width
/// (sizeof of the intermediate record pair, padding included) — the same
/// width spill files occupy on disk.

/// Appends one job as a JSON object. With a non-null `cost`, includes the
/// job's simulated cluster seconds.
void JobStatsToJson(const JobStats& job, const CostModel* cost,
                    JsonWriter* w);

/// Appends a pipeline (aggregates plus the per-job and per-plan arrays).
void PipelineStatsToJson(const PipelineStats& pipeline, const CostModel* cost,
                         JsonWriter* w);

/// Appends one scheduled plan (DAG shape, per-node timing/status, achieved
/// concurrency, and the critical-path/total-work split).
void PlanStatsToJson(const PlanStats& plan, JsonWriter* w);

/// Appends one driver-level ALS iteration (fit / λ / ||G|| plus its jobs).
void IterationStatsToJson(const IterationStats& iteration,
                          const CostModel* cost, JsonWriter* w);

/// Appends the cluster parameters that shaped the measurements.
void ClusterConfigToJson(const ClusterConfig& config, JsonWriter* w);

/// \brief Refit-loop counters for the v9 `refit` object. A plain mirror of
/// the core layer's RefitCounters plus the controller's staleness fields —
/// mapreduce cannot depend on core, so callers (the CLIs) copy the fields
/// across.
struct RefitStatsReport {
  int64_t epochs = 0;          ///< epoch deltas merged and refit
  int64_t delta_nnz = 0;       ///< stored delta entries merged, summed
  double merge_seconds = 0.0;  ///< cumulative merge + cache-patch time
  double refit_seconds = 0.0;  ///< cumulative ALS time across refits
  int64_t refit_iterations = 0;
  bool incremental = false;    ///< dirty-slice cache patching vs fresh cache
  /// Staleness, from the serving controller (zeroed in CLI batch runs).
  int64_t epochs_behind = 0;
  int64_t max_epochs_behind = 0;
};

/// \brief Everything one decomposition run exports. Pointer members are
/// optional (skipped when null) and not owned.
struct StatsReport {
  std::string tool;     ///< e.g. "haten2_cli"
  std::string method;   ///< e.g. "parafac"
  std::string variant;  ///< e.g. "dri"
  std::string dataset;  ///< input path or generator description
  /// "ok", or the failure kind ("oom", "aborted", "io_error",
  /// "worker_lost", "error").
  std::string status = "ok";
  double wall_seconds = 0.0;

  bool has_fit = false;
  double fit = 0.0;
  int iterations_run = 0;

  const ClusterConfig* cluster = nullptr;   ///< also enables CostModel times
  const DecompositionTrace* trace = nullptr;
  const PipelineStats* pipeline = nullptr;
  /// Subprocess-backend per-worker-slot counters
  /// (Engine::WorkerStatsSnapshot); skipped when null or empty.
  const std::vector<distributed::WorkerStats>* workers = nullptr;
  /// Refit-loop counters (v9 `refit` object); skipped when null.
  const RefitStatsReport* refit = nullptr;
};

/// Serializes the whole report ("haten2-stats-v9").
std::string StatsReportToJson(const StatsReport& report);

/// Serializes `report` and writes it to `path`.
Status WriteStatsJsonFile(const StatsReport& report, const std::string& path);

}  // namespace haten2

#endif  // HATEN2_MAPREDUCE_STATS_JSON_H_
