#include "mapreduce/scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/timer.h"

namespace haten2 {
namespace {

/// Longest dependency-chain sum of node seconds over the nodes that ran.
/// With `include_backoff`, each node's simulated retry backoff counts as
/// part of the node's time on the chain — the view that is reconcilable
/// with CostModel::SimulatePipeline, which charges backoff on the serial
/// total (see docs/INTERNALS.md, stats v5). Without it, the path is pure
/// executor time: the lower bound on wall time with infinite workers and
/// no retries, which is what the in-process scheduler actually slept.
double CriticalPathSeconds(const PlanStats& stats, bool include_backoff) {
  std::vector<double> cp(stats.nodes.size(), 0.0);
  double best = 0.0;
  // Nodes are stored in topological order (deps reference lower indices),
  // so one forward pass computes the longest path ending at each node.
  for (size_t i = 0; i < stats.nodes.size(); ++i) {
    const PlanNodeStats& n = stats.nodes[i];
    if (n.status == "skipped") continue;
    double longest_dep = 0.0;
    for (int d : n.deps) {
      longest_dep = std::max(longest_dep, cp[static_cast<size_t>(d)]);
    }
    cp[i] = n.seconds + longest_dep;
    if (include_backoff) cp[i] += n.backoff_seconds;
    best = std::max(best, cp[i]);
  }
  return best;
}

void FinalizeStats(PlanStats* stats, double wall_seconds) {
  stats->wall_seconds = wall_seconds;
  stats->critical_path_seconds =
      CriticalPathSeconds(*stats, /*include_backoff=*/false);
  stats->critical_path_with_backoff_seconds =
      CriticalPathSeconds(*stats, /*include_backoff=*/true);
  stats->total_node_seconds = 0.0;
  stats->total_node_retries = 0;
  stats->total_backoff_seconds = 0.0;
  for (const PlanNodeStats& n : stats->nodes) {
    stats->total_node_seconds += n.seconds;
    if (n.attempts > 1) stats->total_node_retries += n.attempts - 1;
    stats->total_backoff_seconds += n.backoff_seconds;
  }
}

/// Transient node failures worth re-running: an aborted job (a task ran out
/// of attempts — fresh job ids draw a fresh injection pattern) and I/O
/// errors (spill read/write). kResourceExhausted is transient only when the
/// config says the budget may have been raised between attempts. Everything
/// else (bad input, contract violations) is permanent and fails fast.
bool IsTransientNodeFailure(const Status& s, const ClusterConfig& config) {
  switch (s.code()) {
    case StatusCode::kAborted:
    case StatusCode::kIOError:
      return true;
    case StatusCode::kResourceExhausted:
      return config.retry_oom_nodes;
    default:
      return false;
  }
}

/// Simulated backoff before retry number `retry` (1-based): capped
/// exponential, min(base * multiplier^(retry-1), cap).
double NodeBackoffSeconds(const ClusterConfig& config, int retry) {
  double backoff = config.node_backoff_base_seconds;
  for (int i = 1; i < retry; ++i) backoff *= config.node_backoff_multiplier;
  return std::min(backoff, config.node_backoff_cap_seconds);
}

/// Runs one node executor up to config.max_node_attempts times, accumulating
/// per-attempt wall time into node->seconds and simulated backoff into
/// node->backoff_seconds. Callers wrap this in the node's Engine::PlanScope,
/// so the jobs of *every* attempt are attributed to the node.
Status RunNodeWithRetries(const JobSpec& spec, const ClusterConfig& config,
                          PlanNodeStats* node) {
  const int max_attempts = std::max(1, config.max_node_attempts);
  Status s = Status::OK();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    node->attempts = attempt;
    WallTimer attempt_timer;
    s = spec.run();
    node->seconds += attempt_timer.ElapsedSeconds();
    if (s.ok()) return s;
    if (attempt == max_attempts || !IsTransientNodeFailure(s, config)) {
      return s;
    }
    node->backoff_seconds += NodeBackoffSeconds(config, attempt);
  }
  return s;
}

}  // namespace

PlanScheduler::PlanScheduler(Engine* engine, int max_concurrent)
    : engine_(engine),
      max_concurrent_(max_concurrent > 0
                          ? max_concurrent
                          : std::max(1, engine->config().max_concurrent_jobs)) {
}

Status PlanScheduler::Execute(const Plan& plan) {
  if (!plan.build_status().ok()) return plan.build_status();
  if (plan.empty()) return Status::OK();

  PlanStats stats;
  stats.plan_id = engine_->TakePlanId();
  stats.name = plan.name();
  stats.concurrency_limit = max_concurrent_;
  stats.nodes.reserve(plan.nodes().size());
  for (const JobSpec& spec : plan.nodes()) {
    PlanNodeStats n;
    n.label = spec.label;
    n.deps = spec.deps;
    n.contraction_strategy = spec.contraction_strategy;
    stats.nodes.push_back(std::move(n));
  }

  WallTimer timer;
  Status status = max_concurrent_ == 1 ? ExecuteSerial(plan, &stats)
                                       : ExecuteConcurrent(plan, &stats);
  // In-core contraction executors report their phase split through the
  // spec's timing sink; harvest it after the run (failure paths included —
  // a node that died mid-evaluate still shows its layout time).
  for (size_t i = 0; i < stats.nodes.size(); ++i) {
    const JobSpec& spec = plan.nodes()[i];
    if (spec.contraction_timing != nullptr) {
      stats.nodes[i].layout_build_seconds =
          spec.contraction_timing->layout_build_seconds;
      stats.nodes[i].evaluate_seconds =
          spec.contraction_timing->evaluate_seconds;
    }
  }
  FinalizeStats(&stats, timer.ElapsedSeconds());
  engine_->RecordPlan(stats);
  return status;
}

Status PlanScheduler::ExecuteSerial(const Plan& plan, PlanStats* stats) {
  // Node-index order is a topological order (deps reference lower indices),
  // and it is exactly the order the legacy eager drivers issued jobs in —
  // cap 1 reproduces their job sequence verbatim.
  stats->max_observed_concurrency = 1;
  for (int i = 0; i < plan.size(); ++i) {
    const JobSpec& spec = plan.nodes()[static_cast<size_t>(i)];
    PlanNodeStats& node = stats->nodes[static_cast<size_t>(i)];
    Engine::PlanScope scope(stats->plan_id, &node.job_ids);
    Status s = RunNodeWithRetries(spec, engine_->config(), &node);
    if (!s.ok()) {
      node.status = "failed";
      return s;  // later nodes keep their initial "skipped" status
    }
    node.status = "ok";
  }
  return Status::OK();
}

Status PlanScheduler::ExecuteConcurrent(const Plan& plan, PlanStats* stats) {
  const int n = plan.size();
  struct Shared {
    std::mutex mu;
    std::condition_variable wake;
    // Lowest-index ready node first: deterministic start order, and under a
    // generous cap the launch sequence matches the serial one.
    std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
    std::vector<int> pending_deps;
    std::vector<std::vector<int>> dependents;
    int completed = 0;
    int running = 0;
    bool stop_launching = false;
    int failed_node = -1;  // lowest-index failure seen so far
    Status failure = Status::OK();
  } shared;

  shared.pending_deps.resize(static_cast<size_t>(n));
  shared.dependents.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const JobSpec& spec = plan.nodes()[static_cast<size_t>(i)];
    shared.pending_deps[static_cast<size_t>(i)] =
        static_cast<int>(spec.deps.size());
    for (int d : spec.deps) shared.dependents[static_cast<size_t>(d)].push_back(i);
    if (spec.deps.empty()) shared.ready.push(i);
  }

  // Scheduler-owned threads: node executors call Engine::Run, which fans
  // out onto the engine's pool — running executors *on* that pool would
  // deadlock once every pool worker is parked inside a node.
  auto worker = [&]() {
    std::unique_lock<std::mutex> lock(shared.mu);
    while (true) {
      // Sleep until there is something to launch or nothing ever will be:
      // in a valid DAG, empty ready + nothing running means the plan is
      // complete (completed == n) or launching stopped after a failure.
      shared.wake.wait(lock, [&] {
        return shared.stop_launching || !shared.ready.empty() ||
               shared.completed == n;
      });
      if (shared.stop_launching || shared.completed == n) return;
      if (shared.ready.empty()) continue;  // a peer claimed the wakeup
      const int i = shared.ready.top();
      shared.ready.pop();
      ++shared.running;
      stats->max_observed_concurrency =
          std::max(stats->max_observed_concurrency, shared.running);
      PlanNodeStats& node = stats->nodes[static_cast<size_t>(i)];
      lock.unlock();

      Status s;
      {
        Engine::PlanScope scope(stats->plan_id, &node.job_ids);
        s = RunNodeWithRetries(plan.nodes()[static_cast<size_t>(i)],
                               engine_->config(), &node);
      }

      lock.lock();
      --shared.running;
      ++shared.completed;
      if (s.ok()) {
        node.status = "ok";
        for (int dep : shared.dependents[static_cast<size_t>(i)]) {
          if (--shared.pending_deps[static_cast<size_t>(dep)] == 0) {
            shared.ready.push(dep);
          }
        }
      } else {
        node.status = "failed";
        if (shared.failed_node < 0 || i < shared.failed_node) {
          shared.failed_node = i;
          shared.failure = s;
        }
        shared.stop_launching = true;
      }
      shared.wake.notify_all();
    }
  };

  const int num_workers = std::min(max_concurrent_, n);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_workers));
  for (int t = 0; t < num_workers; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  return shared.failure;
}

}  // namespace haten2
