#ifndef HATEN2_MAPREDUCE_SHUFFLE_H_
#define HATEN2_MAPREDUCE_SHUFFLE_H_

// The engine's shuffle-side building blocks, shared by both execution
// backends: the in-process Engine (mapreduce/engine.h) and the subprocess
// workers (distributed/subprocess_job.h) instantiate the same emitters and
// the same combine fold, which is what makes the two backends bit-identical
// — a worker process shuffles, spills, combines, and groups with exactly
// the code the in-process engine uses.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mapreduce/cluster.h"
#include "mapreduce/hash.h"
#include "mapreduce/spill_codec.h"
#include "util/memory_tracker.h"
#include "util/result.h"

namespace haten2 {

/// Fixed-size record trait: byte accounting (and hence the o.o.m.
/// semantics) needs sizeof(T) to be the serialized size. std::pair of
/// fixed-size members qualifies even though the standard does not make it
/// trivially copyable.
template <typename T>
struct IsFixedSizeRecord : std::is_trivially_copyable<T> {};
template <typename A, typename B>
struct IsFixedSizeRecord<std::pair<A, B>>
    : std::conjunction<IsFixedSizeRecord<A>, IsFixedSizeRecord<B>> {};

/// \brief Collects a map task's (key, value) emissions into per-reduce-
/// partition buffers (the in-process equivalent of the Hadoop shuffle
/// write path).
///
/// Emissions are charged incrementally against the engine's memory budget in
/// chunks; once the budget is exhausted the emitter enters a failed state and
/// silently drops further records — the engine then fails the whole job with
/// kResourceExhausted. This reproduces the paper's intermediate-data
/// explosion: a job whose shuffle exceeds cluster memory dies mid-flight.
template <typename K, typename V>
class ShuffleEmitter {
 public:
  using Record = std::pair<K, V>;
  static constexpr int64_t kChargeChunkRecords = 4096;
  /// Serialized width of one intermediate record. Spill files are written
  /// as raw Record structs, so sizeof(Record) — padding included — is the
  /// width a record actually occupies on disk; the same width is charged
  /// against the shuffle budget and reported in every byte counter, keeping
  /// "bytes" in stats equal to bytes observable outside the process
  /// (docs/INTERNALS.md, Accounting).
  static constexpr uint64_t kRecordBytes = sizeof(Record);

  /// `spill_prefix` empty disables spilling; otherwise a partition's buffer
  /// is appended to "<spill_prefix>_p<partition>.spill" and cleared once it
  /// holds `spill_threshold` records (Hadoop's sort-spill), bounding the
  /// task's resident memory. Spilled records remain charged against the
  /// budget: it models the cluster's total intermediate-data capacity.
  /// `compression` selects the on-disk run encoding (spill_codec.h);
  /// `inject_failure_after_bytes` > 0 tears the spill write that would pass
  /// that cumulative byte count (failure injection, see ClusterConfig).
  ShuffleEmitter(int num_partitions, MemoryTracker* tracker,
                 std::string spill_prefix = "",
                 int64_t spill_threshold = 0,
                 SpillCompression compression = SpillCompression::kNone,
                 int64_t inject_failure_after_bytes = 0)
      : buffers_(static_cast<size_t>(num_partitions)),
        spilled_counts_(static_cast<size_t>(num_partitions), 0),
        spilled_disk_bytes_(static_cast<size_t>(num_partitions), 0),
        tracker_(tracker),
        spill_prefix_(std::move(spill_prefix)),
        spill_threshold_(spill_threshold),
        compression_(compression),
        inject_failure_after_bytes_(inject_failure_after_bytes) {}

  void Emit(const K& key, const V& value) {
    if (failed_) return;
    if (uncharged_records_ == kChargeChunkRecords) {
      if (!ChargePending()) return;
    }
    size_t p = static_cast<size_t>(ShuffleHash<K>()(key) % buffers_.size());
    buffers_[p].emplace_back(key, value);
    ++uncharged_records_;
    if (!spill_prefix_.empty() && spill_threshold_ > 0 &&
        static_cast<int64_t>(buffers_[p].size()) >= spill_threshold_) {
      SpillPartition(p);
    }
  }

  /// Charges any pending records; returns false when the budget is blown.
  bool Flush() { return ChargePending(); }

  bool failed() const { return failed_; }
  const Status& failure_status() const { return failure_status_; }
  uint64_t charged_bytes() const { return charged_bytes_; }

  int64_t TotalRecords() const {
    int64_t n = TotalSpilledRecords();
    for (const auto& b : buffers_) n += static_cast<int64_t>(b.size());
    return n;
  }

  int64_t InMemoryRecords() const {
    int64_t n = 0;
    for (const auto& b : buffers_) n += static_cast<int64_t>(b.size());
    return n;
  }

  int64_t TotalSpilledRecords() const {
    int64_t n = 0;
    for (int64_t c : spilled_counts_) n += c;
    return n;
  }

  int64_t SpilledRecords(size_t partition) const {
    return spilled_counts_[partition];
  }

  /// Bytes this emitter's spill runs occupy on disk (compressed width;
  /// equals TotalSpilledRecords() * kRecordBytes when compression is none).
  uint64_t TotalSpilledDiskBytes() const {
    uint64_t n = 0;
    for (uint64_t b : spilled_disk_bytes_) n += b;
    return n;
  }

  std::string SpillPath(size_t partition) const {
    return spill_prefix_ + "_p" + std::to_string(partition) + ".spill";
  }

  /// Streams partition `p`'s spilled records (if any) into `consume`, then
  /// removes the spill file. On a read error returns an IOError naming the
  /// spill path and the failing byte offset, and leaves `spilled_counts_`
  /// intact so RemoveSpill / RemoveAllSpills still clean the file up.
  template <typename ConsumeFn>
  Status DrainSpill(size_t p, ConsumeFn&& consume) {
    if (spilled_counts_[p] == 0) return Status::OK();
    const std::string path = SpillPath(p);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::IOError("cannot open spill file " + path);
    }
    if (compression_ == SpillCompression::kNone) {
      Record rec;
      for (int64_t i = 0; i < spilled_counts_[p]; ++i) {
        in.read(reinterpret_cast<char*>(&rec), sizeof(Record));
        if (in.gcount() != static_cast<std::streamsize>(sizeof(Record))) {
          return Status::IOError(
              "short read in spill file " + path + " at offset " +
              std::to_string(static_cast<uint64_t>(i) * sizeof(Record)));
        }
        consume(rec);
      }
    } else {
      Status s = DrainCompressedSpill(p, in, path, consume);
      if (!s.ok()) return s;
    }
    in.close();
    RemoveSpill(p);
    return Status::OK();
  }

  void RemoveSpill(size_t p) {
    if (spilled_counts_[p] > 0) {
      std::remove(SpillPath(p).c_str());
      spilled_counts_[p] = 0;
      spilled_disk_bytes_[p] = 0;
    }
  }

  void RemoveAllSpills() {
    for (size_t p = 0; p < spilled_counts_.size(); ++p) RemoveSpill(p);
  }

  std::vector<std::vector<Record>>& buffers() { return buffers_; }

 private:
  void SpillPartition(size_t p) {
    const char* data = reinterpret_cast<const char*>(buffers_[p].data());
    size_t nbytes = buffers_[p].size() * sizeof(Record);
    std::string encoded;
    if (compression_ == SpillCompression::kDeltaVarint) {
      EncodeSpillBlock(data, buffers_[p].size(), sizeof(Record), sizeof(K),
                       &encoded);
      data = encoded.data();
      nbytes = encoded.size();
    }
    const std::string path = SpillPath(p);
    if (!WriteSpillBytes(path, data, nbytes)) {
      // A partial append leaves a torn file whose tail no reader can parse.
      // Roll the file back to the last committed run boundary — or remove
      // it outright when nothing was committed — *before* failing, so
      // RemoveAllSpills (keyed on spilled_counts_) cannot leak an orphan.
      std::error_code ec;
      if (spilled_disk_bytes_[p] == 0) {
        std::filesystem::remove(path, ec);
      } else {
        std::filesystem::resize_file(path, spilled_disk_bytes_[p], ec);
        if (ec) {
          std::filesystem::remove(path, ec);
          spilled_counts_[p] = 0;
          spilled_disk_bytes_[p] = 0;
        }
      }
      failed_ = true;
      failure_status_ = Status::IOError("spill write failed: " + path);
      return;
    }
    spilled_counts_[p] += static_cast<int64_t>(buffers_[p].size());
    spilled_disk_bytes_[p] += static_cast<uint64_t>(nbytes);
    buffers_[p].clear();
  }

  /// Appends `nbytes` to the spill file; false on failure. The injection
  /// knob tears the write that would pass the configured cumulative byte
  /// count: half the bytes land on disk, as a mid-write disk-full would
  /// leave them.
  bool WriteSpillBytes(const std::string& path, const char* data,
                       size_t nbytes) {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) return false;
    if (inject_failure_after_bytes_ > 0 &&
        spill_bytes_written_ + static_cast<int64_t>(nbytes) >
            inject_failure_after_bytes_) {
      out.write(data, static_cast<std::streamsize>(nbytes / 2));
      out.flush();
      return false;
    }
    out.write(data, static_cast<std::streamsize>(nbytes));
    out.flush();
    if (!out) return false;
    spill_bytes_written_ += static_cast<int64_t>(nbytes);
    return true;
  }

  /// Block-decoding drain loop for delta_varint spill files: reads
  /// header + payload per run until every spilled record is consumed,
  /// validating counts against `spilled_counts_[p]` as it goes.
  template <typename ConsumeFn>
  Status DrainCompressedSpill(size_t p, std::ifstream& in,
                              const std::string& path, ConsumeFn&& consume) {
    int64_t remaining = spilled_counts_[p];
    uint64_t offset = 0;
    char header_buf[kSpillBlockHeaderBytes];
    std::string payload;
    std::string decoded;
    while (remaining > 0) {
      const std::string context =
          path + " at offset " + std::to_string(offset);
      in.read(header_buf, kSpillBlockHeaderBytes);
      if (in.gcount() !=
          static_cast<std::streamsize>(kSpillBlockHeaderBytes)) {
        return Status::IOError("truncated spill block header in " + context);
      }
      Result<SpillBlockHeader> header = ParseSpillBlockHeader(
          header_buf, kSpillBlockHeaderBytes, context);
      if (!header.ok()) return header.status();
      if (static_cast<int64_t>(header->record_count) > remaining) {
        return Status::IOError("spill block overruns the spilled record "
                               "count in " +
                               context);
      }
      payload.resize(header->payload_bytes);
      in.read(payload.data(),
              static_cast<std::streamsize>(header->payload_bytes));
      if (in.gcount() !=
          static_cast<std::streamsize>(header->payload_bytes)) {
        return Status::IOError("truncated spill block payload in " + context);
      }
      decoded.clear();
      HATEN2_RETURN_IF_ERROR(DecodeSpillBlockPayload(
          *header, payload.data(), payload.size(), sizeof(Record), sizeof(K),
          context, &decoded));
      Record rec;
      for (uint64_t i = 0; i < header->record_count; ++i) {
        // void* cast: IsFixedSizeRecord guarantees Record is memcpy-safe
        // even where std::pair is formally non-trivially-copyable.
        std::memcpy(static_cast<void*>(&rec),
                    decoded.data() + i * sizeof(Record), sizeof(Record));
        consume(rec);
      }
      remaining -= static_cast<int64_t>(header->record_count);
      offset += kSpillBlockHeaderBytes + header->payload_bytes;
    }
    return Status::OK();
  }

  bool ChargePending() {
    if (failed_) return false;
    if (uncharged_records_ == 0) return true;
    uint64_t bytes = static_cast<uint64_t>(uncharged_records_) * kRecordBytes;
    if (tracker_ != nullptr) {
      Status s = tracker_->Charge(bytes);
      if (!s.ok()) {
        failed_ = true;
        failure_status_ = Status::ResourceExhausted(s.message());
        return false;
      }
    }
    charged_bytes_ += bytes;
    uncharged_records_ = 0;
    return true;
  }

  std::vector<std::vector<Record>> buffers_;
  std::vector<int64_t> spilled_counts_;
  /// Bytes committed to each partition's spill file (compressed width) —
  /// the truncation point a torn write rolls back to, and the disk traffic
  /// the CostModel charges.
  std::vector<uint64_t> spilled_disk_bytes_;
  MemoryTracker* tracker_;
  std::string spill_prefix_;
  int64_t spill_threshold_ = 0;
  SpillCompression compression_ = SpillCompression::kNone;
  int64_t inject_failure_after_bytes_ = 0;
  int64_t spill_bytes_written_ = 0;
  int64_t uncharged_records_ = 0;
  uint64_t charged_bytes_ = 0;
  bool failed_ = false;
  Status failure_status_;
};

/// \brief Collects reducer output records.
template <typename K, typename V>
class OutputEmitter {
 public:
  void Emit(const K& key, V value) {
    out_.emplace_back(key, std::move(value));
  }
  std::vector<std::pair<K, V>>& records() { return out_; }

 private:
  std::vector<std::pair<K, V>> out_;
};

/// Folds duplicate keys of one in-memory partition buffer through the
/// combiner, exactly as a Hadoop combiner runs at the end of a map task.
/// Both backends apply it to in-memory buffers only (spilled runs are
/// shuffled uncombined), and both inherit the resulting record order from
/// the fold map's iteration order — which is what keeps the shuffled byte
/// streams, and hence every reduction, bit-identical across backends.
template <typename K, typename V>
void CombineShuffleBuffer(std::vector<std::pair<K, V>>* buf,
                          const std::function<V(const V&, const V&)>& fold) {
  if (buf->size() <= 1) return;
  struct StdHashAdapter {
    size_t operator()(const K& k) const {
      return static_cast<size_t>(ShuffleHash<K>()(k));
    }
  };
  std::unordered_map<K, V, StdHashAdapter> merged;
  merged.reserve(buf->size());
  for (auto& rec : *buf) {
    auto [it, inserted] = merged.try_emplace(rec.first, rec.second);
    if (!inserted) it->second = fold(it->second, rec.second);
  }
  buf->clear();
  buf->reserve(merged.size());
  for (auto& [k, v] : merged) buf->emplace_back(k, std::move(v));
}

/// Deterministic per-(job, task, attempt) map-task failure decision, shared
/// by the in-process engine and the subprocess workers (a worker replays the
/// same draws for the same job id, so retry counts match across backends).
inline bool ShouldFailMapAttempt(const ClusterConfig& config, int64_t job,
                                 size_t task, int attempt) {
  if (config.task_failure_probability <= 0.0) return false;
  uint64_t h = Mix64(config.failure_seed ^
                     Mix64(static_cast<uint64_t>(job) * 1000003ull +
                           static_cast<uint64_t>(task) * 1009ull +
                           static_cast<uint64_t>(attempt)));
  double u = static_cast<double>(h >> 11) *
             (1.0 / 9007199254740992.0);  // 53-bit uniform in [0, 1)
  return u < config.task_failure_probability;
}

}  // namespace haten2

#endif  // HATEN2_MAPREDUCE_SHUFFLE_H_
