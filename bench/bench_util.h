#ifndef HATEN2_BENCH_BENCH_UTIL_H_
#define HATEN2_BENCH_BENCH_UTIL_H_

// Shared helpers for the paper-reproduction benchmark harnesses. Each
// harness regenerates one table or figure of the paper (see DESIGN.md's
// experiment index) and prints the same rows/series the paper reports.
// Absolute numbers differ (simulated cluster, scaled-down data); the shapes
// — who wins, who dies with o.o.m., where crossovers fall — are the
// reproduction target recorded in EXPERIMENTS.md.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "baseline/toolbox.h"
#include "core/parafac.h"
#include "core/tucker.h"
#include "core/variant.h"
#include "mapreduce/cost_model.h"
#include "mapreduce/engine.h"
#include "tensor/sparse_tensor.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace haten2 {
namespace bench {

/// The simulated 40-machine cluster of the paper (Section IV-A1), with a
/// shuffle-memory budget that scales the paper's aggregate cluster memory
/// down to the scaled-down datasets.
///
/// `record_scale`: the harness datasets are ~1000x smaller than the paper's,
/// so each measured record stands for `record_scale` records of the
/// paper-scale workload; the CostModel's per-record costs and bandwidths are
/// scaled accordingly. Without this the fixed per-job startup trivially
/// dominates every simulated time and the curves are flat. The o.o.m.
/// budget is NOT scaled — it applies to the records actually materialized.
inline ClusterConfig PaperCluster(uint64_t shuffle_budget_bytes,
                                  double record_scale = 1000.0) {
  ClusterConfig config;
  config.num_machines = 40;
  config.map_slots_per_machine = 4;
  config.reduce_slots_per_machine = 4;
  config.num_threads = 1;  // benchmark host is single-core
  config.job_startup_seconds = 8.0;
  config.total_shuffle_memory_bytes = shuffle_budget_bytes;
  config.map_seconds_per_record *= record_scale;
  config.reduce_seconds_per_record *= record_scale;
  config.network_bytes_per_second /= record_scale;
  config.disk_bytes_per_second /= record_scale;
  return config;
}

/// One measured cell of a figure: either a time or an o.o.m. marker.
struct Measurement {
  bool oom = false;
  double wall_seconds = 0.0;       ///< real single-host execution time
  double simulated_seconds = 0.0;  ///< CostModel time on the paper cluster
  int64_t jobs = 0;
  int64_t max_intermediate_records = 0;
  uint64_t max_intermediate_bytes = 0;
  int64_t total_intermediate_records = 0;
  /// Spill volume, raw vs on-disk (post-codec) width — equal when spill
  /// compression is off; both 0 when nothing spilled.
  uint64_t total_spilled_raw_bytes = 0;
  uint64_t total_spilled_compressed_bytes = 0;
  /// Subprocess backend: coordinator<->worker socket traffic (sent +
  /// received over every worker slot) during this cell; 0 in-process.
  uint64_t wire_bytes = 0;

  /// Snapshot of the engine's per-job log for this cell (empty for
  /// single-machine baselines), so the JSON export keeps the full detail
  /// the table cells summarize.
  PipelineStats pipeline;

  std::string Cell() const {
    if (oom) return "o.o.m.";
    return StrFormat("%8.1fs", simulated_seconds);
  }
};

/// Runs `body` (which should execute jobs on `engine`) and collects the
/// measurement from the engine's pipeline log.
template <typename Body>
Measurement MeasureMr(Engine* engine, Body&& body) {
  engine->ClearPipeline();
  Measurement out;
  WallTimer timer;
  Status status = body();
  out.wall_seconds = timer.ElapsedSeconds();
  out.oom = status.IsResourceExhausted();
  if (!status.ok() && !out.oom) {
    std::fprintf(stderr, "unexpected failure: %s\n",
                 status.ToString().c_str());
  }
  PipelineStats pipeline = engine->PipelineSnapshot();
  out.jobs = pipeline.NumJobs();
  out.max_intermediate_records = pipeline.MaxIntermediateRecords();
  out.max_intermediate_bytes = pipeline.MaxIntermediateBytes();
  out.total_intermediate_records = pipeline.TotalIntermediateRecords();
  out.total_spilled_raw_bytes = pipeline.TotalSpilledRawBytes();
  out.total_spilled_compressed_bytes = pipeline.TotalSpilledCompressedBytes();
  out.simulated_seconds =
      CostModel(engine->config()).SimulatePipeline(pipeline);
  out.pipeline = std::move(pipeline);
  return out;
}

/// Runs a single-machine baseline body under a memory budget.
template <typename Body>
Measurement MeasureBaseline(Body&& body) {
  Measurement out;
  WallTimer timer;
  Status status = body();
  out.wall_seconds = timer.ElapsedSeconds();
  out.simulated_seconds = out.wall_seconds;
  out.oom = status.IsResourceExhausted();
  if (!status.ok() && !out.oom) {
    std::fprintf(stderr, "unexpected failure: %s\n",
                 status.ToString().c_str());
  }
  return out;
}

inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const std::string& c : columns) std::printf("%14s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("--------------");
  std::printf("\n");
}

inline void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) std::printf("%14s", c.c_str());
  std::printf("\n");
}

}  // namespace bench
}  // namespace haten2

#endif  // HATEN2_BENCH_BENCH_UTIL_H_
