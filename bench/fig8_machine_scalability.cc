// Reproduces Figure 8 of the paper: machine scalability of HaTen2-DRI for
// Tucker and PARAFAC, reported as the "Scale Up" factor T_10 / T_M for
// M = 10..40 machines.
//
// The paper uses the NELL tensor (26M x 26M x 48M, 144M nonzeros); we use a
// 1000x scaled synthetic stand-in with the same shape (26K x 26K x 48K,
// 144K nonzeros). The job counters are measured once by executing the real
// jobs in-process; the per-machine-count times come from the CostModel,
// whose fixed per-job startup term (JVM loading, synchronization) produces
// the paper's flattening: near-linear scale-up at first, diminishing
// returns as machines are added.

#include <cinttypes>

#include "bench_json.h"
#include "bench_util.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace bench {
namespace {

constexpr uint64_t kShuffleBudget = 2ull << 30;

SparseTensor NellStandIn() {
  RandomTensorSpec spec;
  spec.dims = {26000, 26000, 48000};
  spec.nnz = 144000;
  spec.seed = 8;
  return GenerateRandomTensor(spec).value();
}

void Run(BenchJsonLog* log) {
  SparseTensor x = NellStandIn();
  std::printf("dataset: NELL stand-in, %s\n", x.DebugString().c_str());

  // Measure the job counters once per decomposition (one ALS iteration of
  // HaTen2-DRI, core 5x5x5 / rank 5 — the paper uses 10, scaled with data).
  Engine tucker_engine(PaperCluster(kShuffleBudget));
  {
    Haten2Options options;
    options.max_iterations = 1;
    HATEN2_CHECK_OK(
        Haten2TuckerAls(&tucker_engine, x, {5, 5, 5}, options).status());
  }
  Engine parafac_engine(PaperCluster(kShuffleBudget));
  {
    Haten2Options options;
    options.max_iterations = 1;
    options.compute_fit = false;
    HATEN2_CHECK_OK(
        Haten2ParafacAls(&parafac_engine, x, 5, options).status());
  }

  // The job counters are measured once; each per-M cell re-simulates the
  // same pipeline on an M-machine cluster.
  const PipelineStats tucker_pipeline = tucker_engine.PipelineSnapshot();
  const PipelineStats parafac_pipeline = parafac_engine.PipelineSnapshot();
  auto cell_of = [](const PipelineStats& pipeline, double simulated) {
    Measurement m;
    m.simulated_seconds = simulated;
    m.jobs = pipeline.NumJobs();
    m.max_intermediate_records = pipeline.MaxIntermediateRecords();
    m.max_intermediate_bytes = pipeline.MaxIntermediateBytes();
    m.total_intermediate_records = pipeline.TotalIntermediateRecords();
    m.pipeline = pipeline;
    return m;
  };

  const std::vector<int> machines = {10, 15, 20, 25, 30, 35, 40};
  double t10_tucker = 0.0;
  double t10_parafac = 0.0;
  PrintHeader("Figure 8: machine scalability, scale-up T10/TM "
              "(HaTen2-DRI)",
              {"machines", "Tucker T_M", "Tucker up", "PARAFAC T_M",
               "PARAFAC up"});
  // PaperCluster applies the 1000x record-scale correction (the stand-in is
  // 1000x smaller than the real NELL tensor); without it the fixed job
  // startup trivially dominates and the scale-up is flat 1.0x at every M.
  for (int m : machines) {
    ClusterConfig config = PaperCluster(kShuffleBudget);
    config.num_machines = m;
    CostModel model(config);
    double t_tucker = model.SimulatePipeline(tucker_pipeline);
    double t_parafac = model.SimulatePipeline(parafac_pipeline);
    if (m == 10) {
      t10_tucker = t_tucker;
      t10_parafac = t_parafac;
    }
    log->Add("machines", StrFormat("M=%d", m), "HaTen2-DRI-Tucker",
             cell_of(tucker_pipeline, t_tucker));
    log->Add("machines", StrFormat("M=%d", m), "HaTen2-DRI-PARAFAC",
             cell_of(parafac_pipeline, t_parafac));
    PrintRow({StrFormat("%d", m), StrFormat("%.1fs", t_tucker),
              StrFormat("%.2fx", t10_tucker / t_tucker),
              StrFormat("%.1fs", t_parafac),
              StrFormat("%.2fx", t10_parafac / t_parafac)});
  }
  std::printf("\nexpected shape: scale-up grows near-linearly for small M "
              "and flattens toward M=40 (fixed per-job overhead).\n");

  // Part 2: straggler ablation at M=40 — the same measured pipelines
  // re-simulated on a heterogeneous cluster (4 of the 40 machines at
  // quarter speed, e.g. a failing disk or a noisy neighbour), with and
  // without Hadoop-style speculative backups. Uniform + speculation-off is
  // the exact Part 1 M=40 simulation.
  PrintHeader("Figure 8, part 2: straggler ablation at M=40 (HaTen2-DRI)",
              {"cluster", "Tucker T_40", "PARAFAC T_40", "speculated", "won",
               "wasted"});
  struct Ablation {
    const char* label;
    const char* profiles;
    bool speculation;
  };
  const Ablation ablations[] = {
      {"uniform", "", false},
      {"hetero", "1.0x36,0.25x4", false},
      {"hetero+spec", "1.0x36,0.25x4", true},
  };
  for (const Ablation& a : ablations) {
    ClusterConfig config = PaperCluster(kShuffleBudget);
    config.num_machines = 40;
    config.machine_profiles = ParseMachineProfiles(a.profiles).value();
    config.speculative_execution = a.speculation;
    CostModel model(config);
    PipelineSim tucker = model.SimulatePipelineDetailed(tucker_pipeline);
    PipelineSim parafac = model.SimulatePipelineDetailed(parafac_pipeline);
    log->Add("stragglers", a.label, "HaTen2-DRI-Tucker",
             cell_of(tucker_pipeline, tucker.seconds));
    log->Add("stragglers", a.label, "HaTen2-DRI-PARAFAC",
             cell_of(parafac_pipeline, parafac.seconds));
    SpeculationStats spec = tucker.speculation;
    spec.Add(parafac.speculation);
    PrintRow({a.label, StrFormat("%.1fs", tucker.seconds),
              StrFormat("%.1fs", parafac.seconds),
              StrFormat("%" PRId64, spec.speculated),
              StrFormat("%" PRId64, spec.won),
              StrFormat("%.1fs", spec.wasted_seconds)});
  }
  std::printf("\nexpected shape: slow machines stretch the makespan; "
              "speculation claws most of it back by re-running stragglers "
              "on idle fast slots (backups never displace primary "
              "tasks, so it cannot be slower than hetero alone).\n");

  // Part 3: backend comparison — the same one-iteration PARAFAC executed
  // for real on the in-process backend and on the subprocess backend at
  // 1, 2, and 4 worker processes. This is measured wall time on the bench
  // host (not CostModel time): what forking gangs and moving every
  // shuffled run over Unix-domain sockets costs, with the socket traffic
  // itself exported as wire_bytes.
  PrintHeader("Figure 8, part 3: engine backends (PARAFAC, 1 ALS iter)",
              {"backend", "wall", "wire MB", "jobs"});
  struct BackendCell {
    const char* label;
    const char* backend;
    int num_workers;
  };
  const BackendCell backends[] = {
      {"inprocess", "inprocess", 0},
      {"subprocess-w1", "subprocess", 1},
      {"subprocess-w2", "subprocess", 2},
      {"subprocess-w4", "subprocess", 4},
  };
  for (const BackendCell& b : backends) {
    ClusterConfig config = PaperCluster(kShuffleBudget);
    config.backend = b.backend;
    config.num_workers = b.num_workers;
    Engine engine(config);
    Measurement m = MeasureMr(&engine, [&engine, &x]() {
      Haten2Options options;
      options.max_iterations = 1;
      options.compute_fit = false;
      return Haten2ParafacAls(&engine, x, 5, options).status();
    });
    for (const auto& w : engine.WorkerStatsSnapshot()) {
      m.wire_bytes += w.wire_bytes_sent + w.wire_bytes_received;
    }
    log->Add("backend", b.label, "HaTen2-DRI-PARAFAC", m);
    PrintRow({b.label, StrFormat("%.2fs", m.wall_seconds),
              StrFormat("%.1f", static_cast<double>(m.wire_bytes) / 1e6),
              StrFormat("%" PRId64, m.jobs)});
  }
  std::printf("\nexpected shape: the subprocess backend pays fork and "
              "socket overhead for the same dataflow (identical job "
              "counters); wire_bytes grows with every shuffled run crossing "
              "process boundaries twice.\n");
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - Figure 8: machine scalability\n");
  haten2::bench::BenchJsonLog log("fig8_machine_scalability");
  haten2::bench::Run(&log);
  log.Write();
  return 0;
}
