// Reproduces Table III of the paper: per-variant costs of the Tucker
// bottleneck operation Y = X ×₂ Bᵀ ×₃ Cᵀ — the maximum intermediate data
// over the jobs of one evaluation, and the total number of MapReduce jobs.
// The harness runs each variant through the engine, reads the measured
// counters, and prints them next to the paper's closed-form predictions.
// Doubles as the ablation study for the three ideas of Section III-B: each
// successive variant adds exactly one idea, and the simulated runtime column
// shows what that idea buys.

#include <cinttypes>

#include "bench_json.h"
#include "bench_util.h"
#include "core/contract.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace bench {
namespace {

void Run(BenchJsonLog* log) {
  const int64_t dim = 200;
  const int64_t nnz_target = 2000;
  const int64_t q = 5;
  const int64_t r = 5;
  RandomTensorSpec spec;
  spec.dims = {dim, dim, dim};
  spec.nnz = nnz_target;
  spec.seed = 11;
  SparseTensor x = GenerateRandomTensor(spec).value();
  Rng rng(12);
  DenseMatrix b = DenseMatrix::RandomUniform(dim, q, &rng);
  DenseMatrix c = DenseMatrix::RandomUniform(dim, r, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};

  std::printf("input: %s, Q=%" PRId64 ", R=%" PRId64 "\n",
              x.DebugString().c_str(), q, r);
  std::printf("paper's predictions: Naive nnz+IJK, DNN nnz*Q*R, "
              "DRN/DRI nnz*(Q+R); jobs Q+R / Q+R+2 / Q+R+1 / 2\n");
  PrintHeader("Table III: costs of X x2 B' x3 C' (Tucker)",
              {"method", "max-inter", "predicted", "jobs", "pred-jobs",
               "sim-time"});
  for (Variant v : kAllVariants) {
    // Multi-threaded config: lets the plan scheduler overlap independent
    // contraction jobs, so the JSON export demonstrates scheduled
    // concurrency > 1. Counters and outputs are identical to serial runs.
    ClusterConfig config = PaperCluster(/*unlimited*/ 0);
    config.num_threads = 2;
    config.max_concurrent_jobs = 4;
    Engine engine(config);
    Measurement measured = MeasureMr(&engine, [&] {
      return MultiModeContract(&engine, x, factors, 0, MergeKind::kCross, v)
          .status();
    });
    PredictedCost predicted =
        PredictTuckerCost(v, x.nnz(), dim, dim, dim, q, r);
    log->Add("tucker-bottleneck", StrFormat("Q=%" PRId64 ",R=%" PRId64, q, r),
             std::string(VariantName(v)), measured);
    PrintRow({std::string(VariantName(v)).substr(7),
              HumanCount(static_cast<uint64_t>(
                  measured.max_intermediate_records)),
              HumanCount(static_cast<uint64_t>(
                  predicted.max_intermediate_records)),
              StrFormat("%" PRId64, measured.jobs),
              StrFormat("%" PRId64, predicted.total_jobs),
              StrFormat("%.1fs", measured.simulated_seconds)});
  }
  std::printf("\nnotes: measured max-intermediate counts shuffled records; "
              "the Naive prediction nnz+IJK counts the broadcast copies of "
              "b_q, matching the measured broadcast volume nnz + (I*K)*J "
              "per job. DNN's nnz*Q*R appears at its second Collapse job; "
              "DRN/DRI peak at the merge job with nnz*(Q+R) records.\n");
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - Table III: Tucker bottleneck-op "
              "costs\n");
  haten2::bench::BenchJsonLog log("table3_tucker_costs");
  haten2::bench::Run(&log);
  log.Write();
  return 0;
}
