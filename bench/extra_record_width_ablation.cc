// Extra: ablation of an implementation design decision — the fixed-width
// intermediate coordinate (records.h, kMaxMrOrder). Every Hadamard record
// carries a kMaxMrOrder-wide coordinate even for 3-way tensors, trading
// shuffle bytes for a single record layout across orders 2..6. This
// harness quantifies the cost: measured shuffle bytes per evaluation vs
// the hypothetical minimal layout for each order, plus the simulated-time
// impact on the paper cluster.

#include <cinttypes>

#include "bench_util.h"
#include "core/contract.h"
#include "core/records.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace bench {
namespace {

void Run() {
  std::printf("kMaxMrOrder = %d; HadamardRecord = %zu bytes "
              "(coordinate %zu + stream/col %zu + value %zu)\n\n",
              kMaxMrOrder, sizeof(HadamardRecord),
              sizeof(Coord), 2 * sizeof(int32_t), sizeof(double));

  PrintHeader("shuffle bytes per MTTKRP evaluation (rank 5, nnz~20K)",
              {"order", "measured", "minimal", "overhead", "sim-time"});
  for (int order = 2; order <= 5; ++order) {
    RandomTensorSpec spec;
    spec.dims.assign(static_cast<size_t>(order), 2000);
    spec.nnz = 20000;
    spec.seed = 100 + static_cast<uint64_t>(order);
    SparseTensor x = GenerateRandomTensor(spec).value();
    Rng rng(7);
    std::vector<DenseMatrix> owned;
    std::vector<const DenseMatrix*> factors;
    for (int m = 0; m < order; ++m) {
      owned.push_back(DenseMatrix::RandomUniform(2000, 5, &rng));
    }
    for (auto& f : owned) factors.push_back(&f);

    Engine engine(PaperCluster(/*unlimited*/ 0));
    Measurement m = MeasureMr(&engine, [&] {
      return MultiModeContract(&engine, x, factors, 0,
                               MergeKind::kPairwise, Variant::kDri)
          .status();
    });
    uint64_t measured_bytes = engine.pipeline().MaxIntermediateBytes();
    // Hypothetical per-record bytes with an order-exact coordinate:
    // order * 8 (coord) + 8 (stream/col) + 8 (value) + 8 (key).
    uint64_t minimal_record = static_cast<uint64_t>(order) * 8 + 24;
    uint64_t actual_record =
        sizeof(int64_t) + sizeof(HadamardRecord);  // merge-job K+V
    uint64_t minimal_bytes =
        measured_bytes / actual_record * minimal_record;
    PrintRow({StrFormat("%d-way", order), HumanBytes(measured_bytes),
              HumanBytes(minimal_bytes),
              StrFormat("%.0f%%",
                        100.0 * (static_cast<double>(measured_bytes) /
                                     static_cast<double>(minimal_bytes) -
                                 1.0)),
              StrFormat("%.1fs", m.simulated_seconds)});
  }
  std::printf("\nreading: the fixed-width layout costs ~30-90%% extra "
              "shuffle bytes at low orders and converges to zero overhead "
              "at order %d. The alternative — templating every job over "
              "the order — was rejected for code size; shuffle volume "
              "scales the same way in both layouts, so every Table III/IV "
              "comparison is unaffected.\n",
              kMaxMrOrder);
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - extra: intermediate-record width "
              "ablation\n");
  haten2::bench::Run();
  return 0;
}
