// Reproduces the paper's supplementary NELL discovery results ("more
// results on the NELL data is in the supplementary material", Section
// IV-C): PARAFAC on a (noun-phrase-1, noun-phrase-2, context) tensor
// surfaces relational patterns — components whose subject loadings
// concentrate in one entity category, object loadings in another, and
// context loadings in the pattern's phrase group (e.g. city x country via
// 'located-in' contexts).

#include <cinttypes>

#include "bench_util.h"
#include "workload/knowledge_base.h"  // TopKPerColumn
#include "workload/nell.h"

namespace haten2 {
namespace bench {
namespace {

void Run() {
  NellSpec spec;
  spec.num_categories = 6;
  spec.entities_per_category = 200;
  spec.num_contexts = 50;
  spec.num_patterns = 5;
  spec.contexts_per_pattern = 4;
  spec.facts_per_pattern = 3000;
  spec.noise_facts = 1200;
  spec.seed = 9;
  NellData data = GenerateNell(spec).value();
  std::printf("NELL stand-in: %s, %d planted relational patterns\n\n",
              data.tensor.DebugString().c_str(), spec.num_patterns);

  Engine engine(PaperCluster(/*unlimited*/ 0));
  Haten2Options options;
  options.variant = Variant::kDri;
  options.max_iterations = 25;
  options.nonnegative = true;
  options.seed = 21;
  const int64_t rank = spec.num_patterns;
  Result<KruskalModel> model =
      Haten2ParafacAls(&engine, data.tensor, rank, options);
  HATEN2_CHECK(model.ok()) << model.status().ToString();
  std::printf("HaTen2-PARAFAC (DRI, nonnegative), rank %" PRId64
              ", fit %.3f\n\n",
              rank, model->fit);

  const int k = 3;
  std::vector<std::vector<int64_t>> top_np1 =
      TopKPerColumn(model->factors[0], k);
  std::vector<std::vector<int64_t>> top_np2 =
      TopKPerColumn(model->factors[1], k);
  std::vector<std::vector<int64_t>> top_ctx =
      TopKPerColumn(model->factors[2], k);
  for (int64_t r = 0; r < rank; ++r) {
    std::printf("Component %lld:\n", (long long)r);
    std::printf("    np1: ");
    for (size_t i = 0; i < top_np1[static_cast<size_t>(r)].size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  data.EntityName(top_np1[static_cast<size_t>(r)][i])
                      .c_str());
    }
    std::printf("\n    np2: ");
    for (size_t i = 0; i < top_np2[static_cast<size_t>(r)].size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  data.EntityName(top_np2[static_cast<size_t>(r)][i])
                      .c_str());
    }
    std::printf("\n    ctx: ");
    for (size_t i = 0; i < top_ctx[static_cast<size_t>(r)].size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  data.ContextName(top_ctx[static_cast<size_t>(r)][i])
                      .c_str());
    }
    std::printf("\n");
  }

  // Wider top-k for scoring.
  NellRecovery recovery = ScoreNellRecovery(
      data, TopKPerColumn(model->factors[0], 20),
      TopKPerColumn(model->factors[1], 20),
      TopKPerColumn(model->factors[2],
                    static_cast<int>(spec.contexts_per_pattern)));
  std::printf("\nplanted relational patterns recovered: %.0f%%\n",
              recovery.patterns_recovered * 100.0);
  for (size_t p = 0; p < recovery.component_of_pattern.size(); ++p) {
    const auto& pattern = data.patterns[p];
    std::printf("  pattern %zu (%s -> %s): %s\n", p,
                data.EntityName(data.CategoryBegin(pattern.subject_category))
                    .substr(0, data.EntityName(data.CategoryBegin(
                                       pattern.subject_category))
                                   .find(':'))
                    .c_str(),
                data.EntityName(data.CategoryBegin(pattern.object_category))
                    .substr(0, data.EntityName(data.CategoryBegin(
                                       pattern.object_category))
                                   .find(':'))
                    .c_str(),
                recovery.component_of_pattern[p] >= 0 ? "recovered"
                                                      : "NOT recovered");
  }
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - supplementary: NELL concept "
              "discovery\n");
  haten2::bench::Run();
  return 0;
}
