// google-benchmark microbenchmarks for the core computational kernels:
// direct tensor algebra (MTTKRP, TTM, Hadamard), the MapReduce engine's
// per-record overhead, and the HaTen2 bottleneck operation per variant.
// These quantify the constants behind the figure-level harnesses.

#include <benchmark/benchmark.h>

#include "baseline/toolbox.h"
#include "bench_json.h"
#include "core/contract.h"
#include "mapreduce/engine.h"
#include "tensor/tensor_ops.h"
#include "util/random.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace {

SparseTensor MakeTensor(int64_t dim, int64_t nnz, uint64_t seed) {
  RandomTensorSpec spec;
  spec.dims = {dim, dim, dim};
  spec.nnz = nnz;
  spec.seed = seed;
  return GenerateRandomTensor(spec).value();
}

void BM_Mttkrp(benchmark::State& state) {
  const int64_t dim = state.range(0);
  const int64_t rank = state.range(1);
  SparseTensor x = MakeTensor(dim, dim * 10, 1);
  Rng rng(2);
  DenseMatrix a = DenseMatrix::RandomUniform(dim, rank, &rng);
  DenseMatrix b = DenseMatrix::RandomUniform(dim, rank, &rng);
  DenseMatrix c = DenseMatrix::RandomUniform(dim, rank, &rng);
  for (auto _ : state) {
    Result<DenseMatrix> m = Mttkrp(x, {&a, &b, &c}, 0);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations() * x.nnz());
}
BENCHMARK(BM_Mttkrp)->Args({1000, 5})->Args({10000, 5})->Args({10000, 20});

void BM_TtmTransposed(benchmark::State& state) {
  const int64_t dim = state.range(0);
  SparseTensor x = MakeTensor(dim, dim * 10, 3);
  Rng rng(4);
  DenseMatrix b = DenseMatrix::RandomUniform(dim, 5, &rng);
  for (auto _ : state) {
    Result<SparseTensor> y = TtmTransposed(x, b, 1);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * x.nnz() * 5);
}
BENCHMARK(BM_TtmTransposed)->Arg(1000)->Arg(10000);

void BM_MetProjectedUnfolding(benchmark::State& state) {
  const int64_t dim = state.range(0);
  SparseTensor x = MakeTensor(dim, dim * 10, 5);
  Rng rng(6);
  DenseMatrix a = DenseMatrix::RandomUniform(dim, 5, &rng);
  DenseMatrix b = DenseMatrix::RandomUniform(dim, 5, &rng);
  DenseMatrix c = DenseMatrix::RandomUniform(dim, 5, &rng);
  std::vector<const DenseMatrix*> factors = {&a, &b, &c};
  for (auto _ : state) {
    Result<DenseMatrix> y = MetProjectedUnfolding(x, factors, 0, nullptr);
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * x.nnz() * 25);
}
BENCHMARK(BM_MetProjectedUnfolding)->Arg(1000)->Arg(10000);

void BM_EngineShuffle(benchmark::State& state) {
  const int64_t records = state.range(0);
  ClusterConfig config;
  config.num_threads = 1;
  Engine engine(config);
  for (auto _ : state) {
    auto result = engine.Run<int64_t, double, int64_t, double>(
        "micro", records,
        [](int64_t i, ShuffleEmitter<int64_t, double>* em) {
          em->Emit(i % 1024, 1.0);
        },
        [](const int64_t& k, std::vector<double>& vs,
           OutputEmitter<int64_t, double>* out) {
          double sum = 0;
          for (double v : vs) sum += v;
          out->Emit(k, sum);
        });
    benchmark::DoNotOptimize(result);
    engine.ClearPipeline();
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_EngineShuffle)->Arg(10000)->Arg(100000);

void BM_ContractVariant(benchmark::State& state) {
  const Variant variant = static_cast<Variant>(state.range(0));
  const int64_t dim = 2000;
  SparseTensor x = MakeTensor(dim, 20000, 7);
  Rng rng(8);
  DenseMatrix b = DenseMatrix::RandomUniform(dim, 5, &rng);
  DenseMatrix c = DenseMatrix::RandomUniform(dim, 5, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};
  ClusterConfig config;
  config.num_threads = 1;
  Engine engine(config);
  for (auto _ : state) {
    Result<SliceBlocks> y = MultiModeContract(
        &engine, x, factors, 0, MergeKind::kPairwise, variant);
    benchmark::DoNotOptimize(y);
    engine.ClearPipeline();
  }
  state.SetLabel(std::string(VariantName(variant)));
  state.SetItemsProcessed(state.iterations() * x.nnz() * 10);
}
// Naive is excluded: its broadcast makes it a figure-level experiment, not
// a microbenchmark.
BENCHMARK(BM_ContractVariant)
    ->Arg(static_cast<int>(Variant::kDnn))
    ->Arg(static_cast<int>(Variant::kDrn))
    ->Arg(static_cast<int>(Variant::kDri));

// MTTKRP through MultiModeContract with each contraction strategy: the
// dataflow grouping (IMHP + PairwiseMerge jobs) against the in-core SpMV
// kernels, across the ranks where the rank-blocked kernel changes regime.
void BM_MttkrpDataflow(benchmark::State& state) {
  const int64_t rank = state.range(0);
  const int64_t dim = 2000;
  SparseTensor x = MakeTensor(dim, 20000, 11);
  Rng rng(12);
  DenseMatrix b = DenseMatrix::RandomUniform(dim, rank, &rng);
  DenseMatrix c = DenseMatrix::RandomUniform(dim, rank, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};
  ClusterConfig config;
  config.num_threads = 1;
  config.contraction = "dataflow";
  Engine engine(config);
  for (auto _ : state) {
    Result<SliceBlocks> y = MultiModeContract(
        &engine, x, factors, 0, MergeKind::kPairwise, Variant::kDri);
    benchmark::DoNotOptimize(y);
    engine.ClearPipeline();
  }
  state.SetItemsProcessed(state.iterations() * x.nnz() * rank);
}
BENCHMARK(BM_MttkrpDataflow)->Arg(8)->Arg(32)->Arg(64);

void BM_MttkrpInCore(benchmark::State& state) {
  const int64_t rank = state.range(0);
  const int64_t dim = 2000;
  SparseTensor x = MakeTensor(dim, 20000, 11);
  Rng rng(12);
  DenseMatrix b = DenseMatrix::RandomUniform(dim, rank, &rng);
  DenseMatrix c = DenseMatrix::RandomUniform(dim, rank, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};
  ClusterConfig config;
  config.num_threads = 1;
  config.contraction = "incore";
  Engine engine(config);
  // Steady-state ALS shape: the layout is served from the cache after the
  // first evaluation, so the loop times the SpMV passes.
  ContractCache cache;
  for (auto _ : state) {
    Result<SliceBlocks> y = MultiModeContract(
        &engine, x, factors, 0, MergeKind::kPairwise, Variant::kDri, &cache);
    benchmark::DoNotOptimize(y);
    engine.ClearPipeline();
  }
  state.SetItemsProcessed(state.iterations() * x.nnz() * rank);
}
BENCHMARK(BM_MttkrpInCore)->Arg(8)->Arg(32)->Arg(64);

void BM_SparseCanonicalize(benchmark::State& state) {
  const int64_t nnz = state.range(0);
  Rng rng(9);
  for (auto _ : state) {
    state.PauseTiming();
    Result<SparseTensor> t = SparseTensor::Create3(1000, 1000, 1000);
    SparseTensor tensor = std::move(t).value();
    tensor.Reserve(nnz);
    int64_t idx[3];
    for (int64_t e = 0; e < nnz; ++e) {
      idx[0] = static_cast<int64_t>(rng.UniformInt(uint64_t{1000}));
      idx[1] = static_cast<int64_t>(rng.UniformInt(uint64_t{1000}));
      idx[2] = static_cast<int64_t>(rng.UniformInt(uint64_t{1000}));
      tensor.AppendUnchecked(idx, 1.0);
    }
    state.ResumeTiming();
    tensor.Canonicalize();
    benchmark::DoNotOptimize(tensor);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
}
BENCHMARK(BM_SparseCanonicalize)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace haten2

namespace {

// Console reporting plus one "haten2-bench-v1" cell per benchmark run, so
// the kernel constants land in BENCH_micro_ops.json next to the
// figure-level exports. Only the timing fields apply: wall_seconds is the
// per-iteration real time, jobs the iteration count.
class JsonLogReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonLogReporter(haten2::bench::BenchJsonLog* log) : log_(log) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations <= 0) continue;
      haten2::bench::Measurement m;
      m.wall_seconds =
          run.real_accumulated_time / static_cast<double>(run.iterations);
      m.jobs = static_cast<int64_t>(run.iterations);
      log_->Add("kernel", run.benchmark_name(), "micro", m);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  haten2::bench::BenchJsonLog* log_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  haten2::bench::BenchJsonLog log("micro_ops");
  JsonLogReporter reporter(&log);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  log.Write();
  benchmark::Shutdown();
  return 0;
}
