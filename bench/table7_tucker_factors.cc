// Reproduces Table VII of the paper: the per-mode factor groups discovered
// by HaTen2-Tucker on the Freebase-music stand-in. Unlike PARAFAC's coupled
// components, Tucker's factor matrices give independent groups per mode
// (subject groups, object groups, relation groups) that the core tensor
// later combines (Table VIII).

#include <cinttypes>

#include "bench_util.h"
#include "discovery_common.h"

namespace haten2 {
namespace bench {
namespace {

void Run() {
  DiscoveryData data = MakeDiscoveryData();
  std::printf("tensor after preprocessing: %s\n",
              data.tensor.DebugString().c_str());

  Engine engine(PaperCluster(/*unlimited*/ 0));
  Haten2Options options;
  options.variant = Variant::kDri;
  options.max_iterations = 12;
  options.seed = 7;
  const int64_t core = static_cast<int64_t>(DiscoveryKbSpec().num_concepts);
  Result<TuckerModel> model =
      Haten2TuckerAls(&engine, data.tensor, {core, core, core}, options);
  HATEN2_CHECK(model.ok()) << model.status().ToString();
  std::printf("HaTen2-Tucker (DRI), core %" PRId64 "^3, fit %.3f, %lld "
              "jobs\n\n",
              core, model->fit, (long long)engine.pipeline().NumJobs());

  const char* mode_names[3] = {"Subject", "Object", "Relation"};
  const int k = 4;
  for (int mode = 0; mode < 3; ++mode) {
    std::vector<std::vector<int64_t>> top =
        TopKPerColumn(model->factors[static_cast<size_t>(mode)], k);
    std::printf("%s groups:\n", mode_names[mode]);
    for (size_t g = 0; g < top.size(); ++g) {
      std::printf("  %c%zu: ", "SOR"[mode], g + 1);
      for (size_t i = 0; i < top[g].size(); ++i) {
        if (i > 0) std::printf(", ");
        int64_t idx = top[g][i];
        switch (mode) {
          case 0:
            std::printf("%s", data.kb.SubjectName(idx).c_str());
            break;
          case 1:
            std::printf("%s", data.kb.ObjectName(idx).c_str());
            break;
          default:
            std::printf("%s", data.kb.RelationName(idx).c_str());
            break;
        }
      }
      std::printf("\n");
    }
    double score = RecoveryScore(TopKPerColumn(
                                     model->factors[static_cast<size_t>(
                                         mode)],
                                     mode == 2 ? 4 : 25),
                                 PlantedGroups(data.kb, mode));
    std::printf("  planted-group recovery = %.2f\n\n", score);
  }
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - Table VII: Tucker factor groups "
              "(Freebase-music stand-in)\n");
  haten2::bench::Run();
  return 0;
}
