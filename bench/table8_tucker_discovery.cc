// Reproduces Table VIII of the paper: Tucker concept discovery. The
// largest-magnitude core tensor entries name (subject-group, object-group,
// relation-group) combinations; because Tucker factors interact through the
// full core, groups can be *shared* between concepts — the paper's key
// qualitative difference from PARAFAC (its object group O1 appears in two
// concepts). The harness prints the top concepts and checks that a shared
// group shows up, which the generator plants (concepts 0 and 1 share their
// object group).

#include <cinttypes>

#include <set>

#include "bench_util.h"
#include "discovery_common.h"

namespace haten2 {
namespace bench {
namespace {

void Run() {
  DiscoveryData data = MakeDiscoveryData();
  Engine engine(PaperCluster(/*unlimited*/ 0));
  Haten2Options options;
  options.variant = Variant::kDri;
  options.max_iterations = 12;
  options.seed = 7;
  const int64_t core = static_cast<int64_t>(DiscoveryKbSpec().num_concepts);
  Result<TuckerModel> model =
      Haten2TuckerAls(&engine, data.tensor, {core, core, core}, options);
  HATEN2_CHECK(model.ok()) << model.status().ToString();
  std::printf("HaTen2-Tucker (DRI), core %" PRId64 "^3, fit %.3f\n\n", core,
              model->fit);

  const int num_concepts = 4;
  const int members = 3;
  std::vector<CoreEntry> top = TopCoreEntries(model->core, num_concepts);
  std::vector<std::vector<int64_t>> top_s =
      TopKPerColumn(model->factors[0], members);
  std::vector<std::vector<int64_t>> top_o =
      TopKPerColumn(model->factors[1], members);
  std::vector<std::vector<int64_t>> top_r =
      TopKPerColumn(model->factors[2], members);

  std::multiset<int64_t> object_groups_used;
  for (size_t c = 0; c < top.size(); ++c) {
    const CoreEntry& entry = top[c];
    std::printf("Concept %zu: (S%lld, O%lld, R%lld), core value %.3f\n",
                c + 1, (long long)(entry.index[0] + 1),
                (long long)(entry.index[1] + 1),
                (long long)(entry.index[2] + 1), entry.value);
    object_groups_used.insert(entry.index[1]);
    PrintConceptMembers(
        data.kb, top_s[static_cast<size_t>(entry.index[0])],
        top_o[static_cast<size_t>(entry.index[1])],
        top_r[static_cast<size_t>(entry.index[2])]);
  }

  // The paper's observation: an object group appearing in multiple concepts
  // "exemplifies Tucker's ability to find concepts from various, possibly
  // overlapping groups". The generator plants exactly that overlap.
  bool shared = false;
  for (int64_t g = 0; g < core; ++g) {
    if (object_groups_used.count(g) > 1) shared = true;
  }
  std::printf("\nshared object group across concepts: %s (planted: concepts "
              "c0 and c1 share their object group)\n",
              shared ? "YES" : "no");
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - Table VIII: Tucker concept discovery "
              "(Freebase-music stand-in)\n");
  haten2::bench::Run();
  return 0;
}
