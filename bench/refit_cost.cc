// Refit-cost comparison for the ingest loop (ISSUE 10): full refit vs
// incremental refit at equal fit. Both modes warm-start each epoch's ALS
// from the previous factors over the same merged tensor, so the factor
// trajectories are bit-identical; the difference is what happens to the
// ContractCache between epochs — a full rebuild vs dirty-slice patching.
// Deltas here are slice-local (confined to a few slices per mode), the
// regime incremental invalidation exists for; BENCH_refit.json carries the
// two cost cells plus fit/iteration fields the CI job asserts equal on.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "core/incremental_refit.h"
#include "tensor/delta_log.h"
#include "util/random.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace bench {
namespace {

constexpr int64_t kDim = 40;
constexpr int64_t kBaseNnz = 6000;
constexpr int64_t kEpochs = 4;
constexpr int64_t kEpochNnz = 300;
constexpr int64_t kRank = 8;
constexpr int kIterations = 10;
constexpr uint64_t kSeed = 42;
// Slices per mode a delta epoch may touch — slice-local, so per-mode dirty
// sets stay tiny relative to kDim.
constexpr int64_t kSlicesPerMode = 3;

Result<DeltaLog> SliceLocalDeltas(const std::vector<int64_t>& dims) {
  HATEN2_ASSIGN_OR_RETURN(DeltaLog log, DeltaLog::Create(dims));
  Rng rng(kSeed ^ 0xbe7c);
  std::vector<int64_t> idx(dims.size());
  for (int64_t e = 0; e < kEpochs; ++e) {
    // Each epoch picks its own small slice pool per mode.
    std::vector<std::vector<int64_t>> pools(dims.size());
    for (size_t m = 0; m < dims.size(); ++m) {
      for (int64_t s = 0; s < kSlicesPerMode; ++s) {
        pools[m].push_back(static_cast<int64_t>(
            rng.UniformInt(static_cast<uint64_t>(dims[m]))));
      }
    }
    for (int64_t i = 0; i < kEpochNnz; ++i) {
      for (size_t m = 0; m < dims.size(); ++m) {
        idx[m] = pools[m][static_cast<size_t>(
            rng.UniformInt(static_cast<uint64_t>(kSlicesPerMode)))];
      }
      HATEN2_RETURN_IF_ERROR(log.Append(
          idx.data(), static_cast<int>(idx.size()), rng.Uniform() + 0.5));
    }
    HATEN2_RETURN_IF_ERROR(log.SealEpoch().status());
  }
  return log;
}

struct ModeResult {
  Measurement refits;  // the epoch loop only (base fit excluded)
  double final_fit = 0.0;
  int64_t iterations = 0;
  KruskalModel model;
};

Result<ModeResult> RunMode(const SparseTensor& base, const DeltaLog& log,
                           bool incremental) {
  ClusterConfig config = PaperCluster(/*shuffle_budget_bytes=*/0);
  config.contraction = "incore";  // the layout cache is what's under test
  HATEN2_RETURN_IF_ERROR(config.Validate());
  Engine engine(config);

  IncrementalRefitOptions options;
  options.rank = kRank;
  options.incremental = incremental;
  options.als.max_iterations = kIterations;
  options.als.seed = kSeed;
  IncrementalRefitSession session(&engine, base, options);
  HATEN2_RETURN_IF_ERROR(session.FitBase());

  ModeResult out;
  out.refits = MeasureMr(&engine, [&]() -> Status {
    for (int64_t e = 0; e < log.num_epochs(); ++e) {
      HATEN2_RETURN_IF_ERROR(session.RefitWithDelta(log.epoch(e)));
    }
    return Status::OK();
  });
  out.final_fit = session.model().fit;
  out.iterations = session.counters().iterations;
  out.model = session.model();
  return out;
}

bool BitIdentical(const KruskalModel& a, const KruskalModel& b) {
  if (a.factors.size() != b.factors.size()) return false;
  for (size_t m = 0; m < a.factors.size(); ++m) {
    const DenseMatrix& fa = a.factors[m];
    const DenseMatrix& fb = b.factors[m];
    if (fa.rows() != fb.rows() || fa.cols() != fb.cols()) return false;
    for (int64_t r = 0; r < fa.rows(); ++r) {
      for (int64_t c = 0; c < fa.cols(); ++c) {
        if (fa(r, c) != fb(r, c)) return false;
      }
    }
  }
  return true;
}

int RealMain() {
  RandomTensorSpec spec;
  spec.dims = {kDim, kDim, kDim};
  spec.nnz = kBaseNnz;
  spec.seed = kSeed;
  Result<SparseTensor> base = GenerateRandomTensor(spec);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  Result<DeltaLog> log = SliceLocalDeltas(base->dims());
  if (!log.ok()) {
    std::fprintf(stderr, "%s\n", log.status().ToString().c_str());
    return 1;
  }
  std::printf("base %s; %lld slice-local epochs of <=%lld nnz "
              "(<=%lld dirty slices per mode)\n",
              base->DebugString().c_str(), (long long)kEpochs,
              (long long)kEpochNnz, (long long)kSlicesPerMode);

  Result<ModeResult> full = RunMode(*base, *log, /*incremental=*/false);
  Result<ModeResult> incr = RunMode(*base, *log, /*incremental=*/true);
  if (!full.ok() || !incr.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!full.ok() ? full : incr).status().ToString().c_str());
    return 1;
  }

  PrintHeader("Refit cost: full vs incremental (epoch loop only)",
              {"method", "wall", "fit", "iters"});
  PrintRow({"full-refit", StrFormat("%8.2fs", full->refits.wall_seconds),
            StrFormat("%.6f", full->final_fit),
            StrFormat("%lld", (long long)full->iterations)});
  PrintRow({"incremental", StrFormat("%8.2fs", incr->refits.wall_seconds),
            StrFormat("%.6f", incr->final_fit),
            StrFormat("%lld", (long long)incr->iterations)});

  const bool identical = BitIdentical(full->model, incr->model);
  std::printf("\nfactors bit-identical across modes: %s\n",
              identical ? "yes" : "NO — determinism contract broken");

  BenchJsonLog json("refit");
  const std::string sweep = "refit_mode";
  json.Add(sweep,
           StrFormat("epochs=%lld,epoch_nnz=%lld,iters=%lld,fit=%.9f",
                     (long long)kEpochs, (long long)kEpochNnz,
                     (long long)full->iterations, full->final_fit),
           "full-refit", full->refits);
  json.Add(sweep,
           StrFormat("epochs=%lld,epoch_nnz=%lld,iters=%lld,fit=%.9f",
                     (long long)kEpochs, (long long)kEpochNnz,
                     (long long)incr->iterations, incr->final_fit),
           "incremental", incr->refits);
  json.Write();
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() { return haten2::bench::RealMain(); }
