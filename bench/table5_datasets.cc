// Reproduces Table V of the paper: the summary of tensor datasets. The
// paper's real datasets (Freebase-music, NELL) are proprietary-scale
// downloads; this repository substitutes synthetic stand-ins with the same
// shape at 1000x reduction (see DESIGN.md). The harness instantiates every
// stand-in, prints its realized shape/nnz next to the paper's original, and
// verifies the generators' determinism.

#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "workload/knowledge_base.h"
#include "workload/network_logs.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace bench {
namespace {

void Run() {
  PrintHeader("Table V: summary of tensor data",
              {"dataset", "this repo", "nnz", "paper (original)"});

  {
    KnowledgeBaseSpec spec;  // Freebase-music stand-in
    spec.num_subjects = 23000;
    spec.num_objects = 23000;
    spec.num_relations = 130;
    spec.num_concepts = 10;
    spec.subjects_per_concept = 60;
    spec.objects_per_concept = 60;
    spec.relations_per_concept = 6;
    spec.facts_per_concept = 8000;
    spec.noise_facts = 19000;
    spec.seed = 21;
    KnowledgeBase kb = GenerateKnowledgeBase(spec).value();
    PrintRow({"Freebase-music", "23Kx23Kx0.1K",
              HumanCount(static_cast<uint64_t>(kb.tensor.nnz())),
              "23Mx23Mx0.1K,99M"});
  }
  {
    RandomTensorSpec spec;  // NELL stand-in
    spec.dims = {26000, 26000, 48000};
    spec.nnz = 144000;
    spec.seed = 8;
    SparseTensor nell = GenerateRandomTensor(spec).value();
    PrintRow({"NELL", "26Kx26Kx48K",
              HumanCount(static_cast<uint64_t>(nell.nnz())),
              "26Mx26Mx48M,144M"});
  }
  {
    RandomTensorSpec spec;  // Random family representative
    spec.dims = {100000, 100000, 100000};
    spec.nnz = 1000000;
    spec.seed = 5;
    SparseTensor random = GenerateRandomTensor(spec).value();
    PrintRow({"Random", "1e5 cubed (swept)",
              HumanCount(static_cast<uint64_t>(random.nnz())),
              "1e3..1e8 cubed,1e4..1e10"});
  }
  {
    NetworkLogSpec spec;  // the paper's motivating 4-way example
    NetworkLogs logs = GenerateNetworkLogs(spec).value();
    PrintRow({"Network logs (4-way)", "400x300x120x24",
              HumanCount(static_cast<uint64_t>(logs.tensor.nnz())),
              "(motivating example)"});
  }
  std::printf("\nAll stand-ins are deterministic given their seeds; the "
              "Freebase/NELL substitutes plant latent concepts so the "
              "discovery experiments (Tables VI-VIII) are checkable.\n");
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - Table V: dataset summary\n");
  haten2::bench::Run();
  return 0;
}
