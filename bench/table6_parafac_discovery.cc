// Reproduces Table VI of the paper: concept discovery with HaTen2-PARAFAC
// on the Freebase-music stand-in. Each rank-one component couples one
// subject group with one object group and one relation group (the diagonal
// core of PARAFAC); the harness prints the top members per component and
// scores how well the planted concepts were recovered.

#include <cinttypes>

#include "bench_util.h"
#include "discovery_common.h"

namespace haten2 {
namespace bench {
namespace {

void Run() {
  DiscoveryData data = MakeDiscoveryData();
  std::printf("tensor after preprocessing: %s\n",
              data.tensor.DebugString().c_str());

  Engine engine(PaperCluster(/*unlimited*/ 0));
  Haten2Options options;
  options.variant = Variant::kDri;
  options.max_iterations = 25;
  options.nonnegative = true;  // parts-based factors read as concepts
  options.seed = 7;
  const int64_t rank =
      static_cast<int64_t>(DiscoveryKbSpec().num_concepts);
  Result<KruskalModel> model =
      Haten2ParafacAls(&engine, data.tensor, rank, options);
  HATEN2_CHECK(model.ok()) << model.status().ToString();
  std::printf("HaTen2-PARAFAC (DRI, nonnegative), rank %" PRId64
              ", fit %.3f, %lld jobs\n\n",
              rank, model->fit, (long long)engine.pipeline().NumJobs());

  const int k = 3;
  std::vector<std::vector<int64_t>> top_s =
      TopKPerColumn(model->factors[0], k);
  std::vector<std::vector<int64_t>> top_o =
      TopKPerColumn(model->factors[1], k);
  std::vector<std::vector<int64_t>> top_r =
      TopKPerColumn(model->factors[2], k);
  for (int64_t c = 0; c < rank; ++c) {
    std::printf("Concept %lld (lambda=%.2f):\n", (long long)c,
                model->lambda[static_cast<size_t>(c)]);
    PrintConceptMembers(data.kb, top_s[static_cast<size_t>(c)],
                        top_o[static_cast<size_t>(c)],
                        top_r[static_cast<size_t>(c)]);
  }

  std::printf("\nplanted-concept recovery (1.0 = every planted group is "
              "the top of some component):\n");
  const char* mode_names[3] = {"subjects", "objects", "relations"};
  std::vector<std::vector<std::vector<int64_t>>> wide_top(3);
  wide_top[0] = TopKPerColumn(model->factors[0], 25);
  wide_top[1] = TopKPerColumn(model->factors[1], 25);
  wide_top[2] = TopKPerColumn(model->factors[2], 4);
  for (int mode = 0; mode < 3; ++mode) {
    double score = RecoveryScore(wide_top[static_cast<size_t>(mode)],
                                 PlantedGroups(data.kb, mode));
    std::printf("  %-10s recovery = %.2f\n", mode_names[mode], score);
  }
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - Table VI: PARAFAC concept discovery "
              "(Freebase-music stand-in)\n");
  haten2::bench::Run();
  return 0;
}
