// Serving-latency harness: fits a small PARAFAC model on a planted
// low-rank tensor, installs it in a ModelRegistry, and drives the request
// pipeline with a closed-loop mixed workload at increasing client counts.
// Reports QPS, mixed-workload latency percentiles, and cache hit rate per
// point, and writes BENCH_serving_latency.json
// ("haten2-serving-bench-v1"; $HATEN2_BENCH_JSON_DIR honored like the
// other harnesses).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/parafac.h"
#include "mapreduce/engine.h"
#include "serving/model_registry.h"
#include "serving/query_engine.h"
#include "serving/request_pipeline.h"
#include "serving/serving_stats.h"
#include "util/json_writer.h"
#include "util/random.h"
#include "util/timer.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace {

constexpr double kDurationSeconds = 0.5;
constexpr const char* kModelName = "bench";

/// Random query from the mixed workload: 20% top-k, 40% neighbors (Zipf
/// anchors, so the cache sees repetition), 40% concepts.
Query RandomQuery(const ServedModel& model, Rng* rng) {
  const int order = model.order();
  Query q;
  q.model = kModelName;
  double roll = rng->Uniform();
  if (roll < 0.2) {
    q.kind = QueryKind::kTopK;
    q.k = 10;
    q.beam = 10;
  } else if (roll < 0.6) {
    q.kind = QueryKind::kNeighbors;
    q.mode = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(order)));
    int64_t dim = model.factors()[static_cast<size_t>(q.mode)].rows();
    q.row = static_cast<int64_t>(
        rng->Zipf(static_cast<uint64_t>(dim), 1.1));
    q.k = 10;
  } else {
    q.kind = QueryKind::kConcepts;
    q.component = static_cast<int64_t>(
        rng->UniformInt(static_cast<uint64_t>(model.rank())));
    q.mode = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(order)));
    q.k = 10;
  }
  return q;
}

/// Sums the per-class histograms into one mixed-workload snapshot.
LatencyHistogram::Snapshot MixedSnapshot(const ServingStats& stats) {
  LatencyHistogram::Snapshot mixed;
  for (int c = 0; c < kNumServingQueryClasses; ++c) {
    LatencyHistogram::Snapshot s =
        stats.ClassSnapshot(static_cast<ServingQueryClass>(c));
    for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
      mixed.counts[static_cast<size_t>(b)] +=
          s.counts[static_cast<size_t>(b)];
    }
    mixed.total_count += s.total_count;
    mixed.total_seconds += s.total_seconds;
  }
  return mixed;
}

}  // namespace
}  // namespace haten2

int main() {
  using namespace haten2;

  // Fit a modest model once; serving latency, not fitting, is measured.
  LowRankTensorSpec spec;
  spec.dims = {400, 300, 200};
  spec.rank = 4;
  spec.block_size = 12;
  spec.nnz_per_component = 4000;
  spec.seed = 31;
  Result<PlantedTensor> planted = GenerateLowRankTensor(spec);
  if (!planted.ok()) {
    std::fprintf(stderr, "%s\n", planted.status().ToString().c_str());
    return 1;
  }
  Engine engine_mr(ClusterConfig::ForTesting());
  Haten2Options fit_options;
  fit_options.max_iterations = 10;
  fit_options.nonnegative = true;
  Result<KruskalModel> model =
      Haten2ParafacAls(&engine_mr, planted->tensor, spec.rank, fit_options);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  ModelRegistry registry;
  auto observed = std::make_shared<const SparseTensor>(planted->tensor);
  Result<int64_t> version =
      registry.InstallKruskal(kModelName, std::move(model).value(), observed);
  if (!version.ok()) {
    std::fprintf(stderr, "%s\n", version.status().ToString().c_str());
    return 1;
  }
  Result<std::shared_ptr<const ServedModel>> served = registry.Get(kModelName);
  if (!served.ok()) {
    std::fprintf(stderr, "%s\n", served.status().ToString().c_str());
    return 1;
  }
  QueryEngine engine(&registry);

  std::printf("serving latency, %.1fs closed loop per point, 4 workers\n\n",
              kDurationSeconds);
  std::printf("%8s %10s %10s %10s %10s %10s %10s\n", "clients", "queries",
              "qps", "p50_ms", "p95_ms", "p99_ms", "hit_rate");

  JsonWriter w;
  w.BeginObject();
  w.Key("schema").Value("haten2-serving-bench-v1");
  w.Key("bench").Value("serving_latency");
  w.Key("duration_seconds").Value(kDurationSeconds);
  w.Key("cells").BeginArray();
  for (int clients : {1, 2, 4, 8}) {
    ServingStats stats;
    PipelineOptions options;
    options.num_threads = 4;
    RequestPipeline pipeline(&engine, &stats, options);

    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        Rng rng(1000 + static_cast<uint64_t>(c));
        WallTimer timer;
        while (timer.ElapsedSeconds() < kDurationSeconds) {
          pipeline.Submit(RandomQuery(**served, &rng)).get();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    pipeline.Shutdown();
    stats.EndWindow();

    ShardedLruCache<QueryResult>::Stats cache = pipeline.CacheStats();
    LatencyHistogram::Snapshot mixed = MixedSnapshot(stats);
    double p50 = mixed.Quantile(0.50) * 1e3;
    double p95 = mixed.Quantile(0.95) * 1e3;
    double p99 = mixed.Quantile(0.99) * 1e3;

    std::printf("%8d %10llu %10.0f %10.3f %10.3f %10.3f %9.1f%%\n", clients,
                (unsigned long long)stats.TotalQueries(), stats.Qps(), p50,
                p95, p99, 100.0 * cache.HitRate());

    w.BeginObject();
    w.Key("clients").Value(clients);
    w.Key("queries").Value(static_cast<uint64_t>(stats.TotalQueries()));
    w.Key("qps").Value(stats.Qps());
    w.Key("p50_ms").Value(p50);
    w.Key("p95_ms").Value(p95);
    w.Key("p99_ms").Value(p99);
    w.Key("cache_hit_rate").Value(cache.HitRate());
    w.Key("cache_hits").Value(cache.hits);
    w.Key("cache_misses").Value(cache.misses);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();

  const char* dir = std::getenv("HATEN2_BENCH_JSON_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0')
                         ? std::string(dir) + "/BENCH_serving_latency.json"
                         : "BENCH_serving_latency.json";
  Status written = WriteTextFile(path, w.str());
  if (!written.ok()) {
    std::fprintf(stderr, "bench json: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}
