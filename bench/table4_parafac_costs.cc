// Reproduces Table IV of the paper: per-variant costs of the PARAFAC
// bottleneck operation Y = X₍₁₎ (C ⊙ B) — maximum intermediate data and
// total MapReduce jobs — measured against the paper's closed-form
// predictions, plus the simulated runtime (the ablation column).

#include <cinttypes>

#include "bench_json.h"
#include "bench_util.h"
#include "core/contract.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace bench {
namespace {

void Run(BenchJsonLog* log) {
  const int64_t dim = 200;
  const int64_t nnz_target = 2000;
  const int64_t rank = 5;
  RandomTensorSpec spec;
  spec.dims = {dim, dim, dim};
  spec.nnz = nnz_target;
  spec.seed = 13;
  SparseTensor x = GenerateRandomTensor(spec).value();
  Rng rng(14);
  DenseMatrix b = DenseMatrix::RandomUniform(dim, rank, &rng);
  DenseMatrix c = DenseMatrix::RandomUniform(dim, rank, &rng);
  std::vector<const DenseMatrix*> factors = {nullptr, &b, &c};

  std::printf("input: %s, R=%" PRId64 "\n", x.DebugString().c_str(), rank);
  std::printf("paper's predictions: Naive nnz+IJK, DNN nnz+J, DRN/DRI "
              "2*nnz*R; jobs 2R / 4R / 2R+1 / 2\n");
  PrintHeader("Table IV: costs of X(1) (C kr B) (PARAFAC)",
              {"method", "max-inter", "predicted", "jobs", "pred-jobs",
               "sim-time"});
  for (Variant v : kAllVariants) {
    // Multi-threaded config: lets the plan scheduler overlap independent
    // contraction jobs, so the JSON export demonstrates scheduled
    // concurrency > 1. Counters and outputs are identical to serial runs.
    ClusterConfig config = PaperCluster(/*unlimited*/ 0);
    config.num_threads = 2;
    config.max_concurrent_jobs = 4;
    Engine engine(config);
    Measurement measured = MeasureMr(&engine, [&] {
      return MultiModeContract(&engine, x, factors, 0, MergeKind::kPairwise,
                               v)
          .status();
    });
    PredictedCost predicted = PredictParafacCost(v, x.nnz(), dim, dim, dim,
                                                 rank);
    log->Add("parafac-bottleneck", StrFormat("R=%" PRId64, rank),
             std::string(VariantName(v)), measured);
    PrintRow({std::string(VariantName(v)).substr(7),
              HumanCount(static_cast<uint64_t>(
                  measured.max_intermediate_records)),
              HumanCount(static_cast<uint64_t>(
                  predicted.max_intermediate_records)),
              StrFormat("%" PRId64, measured.jobs),
              StrFormat("%" PRId64, predicted.total_jobs),
              StrFormat("%.1fs", measured.simulated_seconds)});
  }
  std::printf("\nnotes: DNN's per-job shuffle stays at ~nnz + J records, so "
              "it never explodes on memory — its cost is the 4R jobs of "
              "fixed overhead (sim-time column). DRI compresses the same "
              "work into 2 jobs.\n");
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - Table IV: PARAFAC bottleneck-op "
              "costs\n");
  haten2::bench::BenchJsonLog log("table4_parafac_costs");
  haten2::bench::Run(&log);
  log.Write();
  return 0;
}
