// Reproduces Table II of the paper: the qualitative comparison of all
// methods — which of the three HaTen2 ideas (decoupling the steps, removing
// dependencies, integrating jobs) each variant incorporates.

#include <cstdio>

#include "core/variant.h"

int main() {
  using haten2::TraitsOf;
  using haten2::Variant;
  using haten2::VariantName;

  std::printf("HaTen2 reproduction - Table II: comparison of all methods\n\n");
  std::printf("%-28s %-13s %-16s %-16s %-16s\n", "Method", "Distributed?",
              "Decoupling(D/N)", "RemoveDeps(R/N)", "Integrating(I/N)");
  std::printf("%-28s %-13s %-16s %-16s %-16s\n", "Tensor Toolbox", "No",
              "No", "No", "No");
  for (Variant v : haten2::kAllVariants) {
    haten2::VariantTraits t = TraitsOf(v);
    std::string name(VariantName(v));
    if (v == Variant::kDri) name += " (HaTen2)";
    std::printf("%-28s %-13s %-16s %-16s %-16s\n", name.c_str(),
                t.distributed ? "Yes" : "No",
                t.decouples_steps ? "Yes" : "No",
                t.removes_dependencies ? "Yes" : "No",
                t.integrates_jobs ? "Yes" : "No");
  }
  // Post-paper extension: sketched HOOI rides the DRI dataflow, so it
  // inherits all three ideas; the randomized projections are an extra
  // (accuracy-for-shuffle) trade on top, not a fourth column.
  std::printf("%-28s %-13s %-16s %-16s %-16s\n",
              "HaTen2-DRI + sketch (ours)", "Yes", "Yes", "Yes", "Yes");
  return 0;
}
