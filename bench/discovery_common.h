#ifndef HATEN2_BENCH_DISCOVERY_COMMON_H_
#define HATEN2_BENCH_DISCOVERY_COMMON_H_

// Shared setup for the concept-discovery harnesses (Tables VI-VIII): the
// Freebase-music stand-in knowledge base plus the paper's preprocessing
// pipeline (Section IV-C), at a size the discovery pipeline finishes in
// seconds.

#include "bench_util.h"
#include "workload/knowledge_base.h"

namespace haten2 {
namespace bench {

inline KnowledgeBaseSpec DiscoveryKbSpec() {
  KnowledgeBaseSpec spec;
  spec.num_subjects = 2000;
  spec.num_objects = 2000;
  spec.num_relations = 40;
  spec.num_concepts = 4;
  spec.subjects_per_concept = 25;
  spec.objects_per_concept = 25;
  spec.relations_per_concept = 4;
  spec.facts_per_concept = 2500;
  spec.noise_facts = 1500;
  spec.share_groups = true;  // concepts 0/1 share an object group
  spec.seed = 42;
  return spec;
}

struct DiscoveryData {
  KnowledgeBase kb;
  SparseTensor tensor;  // preprocessed
};

inline DiscoveryData MakeDiscoveryData() {
  DiscoveryData data;
  data.kb = GenerateKnowledgeBase(DiscoveryKbSpec()).value();
  PreprocessOptions opts;
  opts.min_relation_count = 2;
  opts.max_relation_fraction = 0.5;
  Result<SparseTensor> cleaned =
      PreprocessKnowledgeTensor(data.kb.tensor, opts);
  HATEN2_CHECK(cleaned.ok()) << cleaned.status().ToString();
  data.tensor = std::move(cleaned).value();
  return data;
}

/// Prints one "concept" row: top-k names for each mode.
inline void PrintConceptMembers(const KnowledgeBase& kb,
                                const std::vector<int64_t>& subjects,
                                const std::vector<int64_t>& objects,
                                const std::vector<int64_t>& relations) {
  auto join_names = [](const std::vector<std::string>& names) {
    std::string out;
    for (size_t i = 0; i < names.size(); ++i) {
      if (i > 0) out += ", ";
      out += names[i];
    }
    return out;
  };
  std::vector<std::string> s;
  std::vector<std::string> o;
  std::vector<std::string> r;
  for (int64_t i : subjects) s.push_back(kb.SubjectName(i));
  for (int64_t i : objects) o.push_back(kb.ObjectName(i));
  for (int64_t i : relations) r.push_back(kb.RelationName(i));
  std::printf("    subjects:  %s\n", join_names(s).c_str());
  std::printf("    objects:   %s\n", join_names(o).c_str());
  std::printf("    relations: %s\n", join_names(r).c_str());
}

/// Planted groups of one mode, for RecoveryScore.
inline std::vector<std::vector<int64_t>> PlantedGroups(
    const KnowledgeBase& kb, int mode) {
  std::vector<std::vector<int64_t>> groups;
  for (const auto& c : kb.concepts) {
    switch (mode) {
      case 0:
        groups.push_back(c.subjects);
        break;
      case 1:
        groups.push_back(c.objects);
        break;
      default:
        groups.push_back(c.relations);
        break;
    }
  }
  return groups;
}

}  // namespace bench
}  // namespace haten2

#endif  // HATEN2_BENCH_DISCOVERY_COMMON_H_
