// Reproduces Figure 1 of the paper: data scalability of Tucker
// decomposition for (a) nonzeros & dimensionality, (b) density, and (c)
// core tensor size, comparing the Tensor-Toolbox baseline with the four
// HaTen2 variants.
//
// Scaling substitutions (see DESIGN.md / EXPERIMENTS.md): dimensionality is
// swept 10²..3·10⁴ instead of 10³..10⁸, the core is 5³ instead of 10³, and
// the cluster's aggregate shuffle memory is 256 MiB (the paper's 40 x 32 GB
// scaled to the smaller data); the single-machine baseline gets 6 MiB.
// Times are simulated 40-machine makespans from the measured job counters.
//
// Expected shape (paper): Toolbox is competitive at the smallest scales and
// o.o.m.s first among survivors; Naive o.o.m.s immediately beyond the
// smallest scale; DNN o.o.m.s ~10x earlier than DRN/DRI; DRI completes
// everywhere and is the fastest HaTen2 variant.

#include <cinttypes>

#include "bench_json.h"
#include "bench_util.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace bench {
namespace {

constexpr uint64_t kShuffleBudget = 256ull << 20;  // 256 MiB
constexpr uint64_t kToolboxBudget = 6ull << 20;   // 6 MiB

struct MethodState {
  std::string name;
  bool skipped = false;  // after first o.o.m., larger scales are skipped
};

void RunSweep(const std::string& title, const std::string& param_name,
              const std::vector<std::string>& param_labels,
              const std::vector<SparseTensor>& tensors,
              const std::vector<int64_t>& cores, BenchJsonLog* log) {
  std::vector<MethodState> methods = {
      {"Toolbox"},      {"HaTen2-Naive"}, {"HaTen2-DNN"},
      {"HaTen2-DRN"},   {"HaTen2-DRI"},
  };
  PrintHeader(title, {param_name, "Toolbox", "Naive", "DNN", "DRN", "DRI"});
  for (size_t p = 0; p < tensors.size(); ++p) {
    const SparseTensor& x = tensors[p];
    const int64_t core = cores[p];
    std::vector<std::string> cells = {param_labels[p]};
    for (size_t m = 0; m < methods.size(); ++m) {
      if (methods[m].skipped) {
        cells.push_back("skip(oom)");
        continue;
      }
      Measurement result;
      if (m == 0) {
        MemoryTracker tracker(kToolboxBudget);
        BaselineOptions options;
        options.max_iterations = 1;
        options.memory = &tracker;
        result = MeasureBaseline([&] {
          return ToolboxTuckerAls(x, {core, core, core}, options).status();
        });
      } else {
        Engine engine(PaperCluster(kShuffleBudget));
        Haten2Options options;
        options.max_iterations = 1;
        options.variant = static_cast<Variant>(m - 1);
        result = MeasureMr(&engine, [&] {
          return Haten2TuckerAls(&engine, x, {core, core, core}, options)
              .status();
        });
      }
      if (result.oom) methods[m].skipped = true;
      log->Add(param_name, param_labels[p], methods[m].name, result);
      cells.push_back(result.Cell());
    }
    PrintRow(cells);
  }
}

void PartDims(BenchJsonLog* log) {
  std::vector<int64_t> dims = {100, 1000, 10000, 30000};
  std::vector<std::string> labels;
  std::vector<SparseTensor> tensors;
  std::vector<int64_t> cores;
  for (int64_t dim : dims) {
    RandomTensorSpec spec;
    spec.dims = {dim, dim, dim};
    spec.nnz = dim * 10;
    spec.seed = 1000 + static_cast<uint64_t>(dim);
    tensors.push_back(GenerateRandomTensor(spec).value());
    labels.push_back(StrFormat("I=%" PRId64, dim));
    cores.push_back(5);
  }
  RunSweep("Figure 1(a): Tucker, nonzeros & dimensionality (nnz = 10*I, "
           "core 5x5x5)",
           "dims", labels, tensors, cores, log);
}

void PartDensity(BenchJsonLog* log) {
  const int64_t dim = 600;
  std::vector<double> densities = {1e-6, 1e-5, 1e-4, 1e-3};
  std::vector<std::string> labels;
  std::vector<SparseTensor> tensors;
  std::vector<int64_t> cores;
  for (double d : densities) {
    tensors.push_back(GenerateRandomCubicTensor(dim, d, 77).value());
    labels.push_back(StrFormat("%.0e", d));
    cores.push_back(5);
  }
  RunSweep("Figure 1(b): Tucker, density (I=J=K=600, core 5x5x5)",
           "density", labels, tensors, cores, log);
}

void PartCore(BenchJsonLog* log) {
  RandomTensorSpec spec;
  spec.dims = {10000, 10000, 10000};
  spec.nnz = 50000;
  spec.seed = 3;
  SparseTensor x = GenerateRandomTensor(spec).value();
  // Capped at 16: the driver-side SVD of the ПJ x ПJ Gram matrix is
  // cubic in the block size, and 32^2-wide blocks dominate wall time
  // without changing the ordering (see EXPERIMENTS.md).
  std::vector<int64_t> cores = {4, 8, 16};
  std::vector<std::string> labels;
  std::vector<SparseTensor> tensors;
  for (int64_t c : cores) {
    labels.push_back(StrFormat("%" PRId64 "^3", c));
    tensors.push_back(x);
  }
  RunSweep("Figure 1(c): Tucker, core tensor size (I=10^4, nnz=5*10^4)",
           "core", labels, tensors, cores, log);
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - Figure 1: Tucker data scalability\n");
  std::printf("(HaTen2 columns: simulated 40-machine times; Toolbox "
              "column: real single-machine wall time. o.o.m. = exceeded "
              "memory budget; skip(oom) = method already failed at a "
              "smaller scale)\n");
  haten2::bench::BenchJsonLog log("fig1_tucker_scalability");
  haten2::bench::PartDims(&log);
  haten2::bench::PartDensity(&log);
  haten2::bench::PartCore(&log);
  log.Write();
  return 0;
}
