// Reproduces Figure 1 of the paper: data scalability of Tucker
// decomposition for (a) nonzeros & dimensionality, (b) density, and (c)
// core tensor size, comparing the Tensor-Toolbox baseline with the four
// HaTen2 variants.
//
// Scaling substitutions (see DESIGN.md / EXPERIMENTS.md): dimensionality is
// swept 10²..3·10⁴ instead of 10³..10⁸, the core is 5³ instead of 10³, and
// the cluster's aggregate shuffle memory is 256 MiB (the paper's 40 x 32 GB
// scaled to the smaller data); the single-machine baseline gets 6 MiB.
// Times are simulated 40-machine makespans from the measured job counters.
//
// Expected shape (paper): Toolbox is competitive at the smallest scales and
// o.o.m.s first among survivors; Naive o.o.m.s immediately beyond the
// smallest scale; DNN o.o.m.s ~10x earlier than DRN/DRI; DRI completes
// everywhere and is the fastest HaTen2 variant.

#include <cinttypes>

#include "bench_json.h"
#include "bench_util.h"
#include "core/sketched_tucker.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace bench {
namespace {

constexpr uint64_t kShuffleBudget = 256ull << 20;  // 256 MiB
constexpr uint64_t kToolboxBudget = 6ull << 20;   // 6 MiB

struct MethodState {
  std::string name;
  bool skipped = false;  // after first o.o.m., larger scales are skipped
};

void RunSweep(const std::string& title, const std::string& param_name,
              const std::vector<std::string>& param_labels,
              const std::vector<SparseTensor>& tensors,
              const std::vector<int64_t>& cores, BenchJsonLog* log) {
  std::vector<MethodState> methods = {
      {"Toolbox"},      {"HaTen2-Naive"}, {"HaTen2-DNN"},
      {"HaTen2-DRN"},   {"HaTen2-DRI"},   {"HaTen2-DRI-sk"},
  };
  PrintHeader(title, {param_name, "Toolbox", "Naive", "DNN", "DRN", "DRI",
                      "DRI-sk"});
  for (size_t p = 0; p < tensors.size(); ++p) {
    const SparseTensor& x = tensors[p];
    const int64_t core = cores[p];
    std::vector<std::string> cells = {param_labels[p]};
    for (size_t m = 0; m < methods.size(); ++m) {
      if (methods[m].skipped) {
        cells.push_back("skip(oom)");
        continue;
      }
      Measurement result;
      if (m == 0) {
        MemoryTracker tracker(kToolboxBudget);
        BaselineOptions options;
        options.max_iterations = 1;
        options.memory = &tracker;
        result = MeasureBaseline([&] {
          return ToolboxTuckerAls(x, {core, core, core}, options).status();
        });
      } else if (methods[m].name == "HaTen2-DRI-sk") {
        // Sketched HOOI on the DRI dataflow: gaussian projections, default
        // (auto) sketch width. Single-sweep cells measure the sketched
        // sweep itself, so polish is off here; the fit-vs-speed ablation
        // below runs the full schedule.
        ClusterConfig config = PaperCluster(kShuffleBudget);
        config.tucker_sketch = "gaussian";
        config.exact_polish_sweeps = 0;
        Engine engine(config);
        Haten2Options options;
        options.max_iterations = 1;
        options.variant = Variant::kDri;
        result = MeasureMr(&engine, [&] {
          return Haten2SketchedTuckerAls(&engine, x, {core, core, core},
                                         options)
              .status();
        });
      } else {
        Engine engine(PaperCluster(kShuffleBudget));
        Haten2Options options;
        options.max_iterations = 1;
        options.variant = static_cast<Variant>(m - 1);
        result = MeasureMr(&engine, [&] {
          return Haten2TuckerAls(&engine, x, {core, core, core}, options)
              .status();
        });
      }
      if (result.oom) methods[m].skipped = true;
      log->Add(param_name, param_labels[p], methods[m].name, result);
      cells.push_back(result.Cell());
    }
    PrintRow(cells);
  }
}

void PartDims(BenchJsonLog* log) {
  std::vector<int64_t> dims = {100, 1000, 10000, 30000};
  std::vector<std::string> labels;
  std::vector<SparseTensor> tensors;
  std::vector<int64_t> cores;
  for (int64_t dim : dims) {
    RandomTensorSpec spec;
    spec.dims = {dim, dim, dim};
    spec.nnz = dim * 10;
    spec.seed = 1000 + static_cast<uint64_t>(dim);
    tensors.push_back(GenerateRandomTensor(spec).value());
    labels.push_back(StrFormat("I=%" PRId64, dim));
    cores.push_back(5);
  }
  RunSweep("Figure 1(a): Tucker, nonzeros & dimensionality (nnz = 10*I, "
           "core 5x5x5)",
           "dims", labels, tensors, cores, log);
}

void PartDensity(BenchJsonLog* log) {
  const int64_t dim = 600;
  std::vector<double> densities = {1e-6, 1e-5, 1e-4, 1e-3};
  std::vector<std::string> labels;
  std::vector<SparseTensor> tensors;
  std::vector<int64_t> cores;
  for (double d : densities) {
    tensors.push_back(GenerateRandomCubicTensor(dim, d, 77).value());
    labels.push_back(StrFormat("%.0e", d));
    cores.push_back(5);
  }
  RunSweep("Figure 1(b): Tucker, density (I=J=K=600, core 5x5x5)",
           "density", labels, tensors, cores, log);
}

void PartCore(BenchJsonLog* log) {
  RandomTensorSpec spec;
  spec.dims = {10000, 10000, 10000};
  spec.nnz = 50000;
  spec.seed = 3;
  SparseTensor x = GenerateRandomTensor(spec).value();
  // Capped at 16: the driver-side SVD of the ПJ x ПJ Gram matrix is
  // cubic in the block size, and 32^2-wide blocks dominate wall time
  // without changing the ordering (see EXPERIMENTS.md).
  std::vector<int64_t> cores = {4, 8, 16};
  std::vector<std::string> labels;
  std::vector<SparseTensor> tensors;
  for (int64_t c : cores) {
    labels.push_back(StrFormat("%" PRId64 "^3", c));
    tensors.push_back(x);
  }
  RunSweep("Figure 1(c): Tucker, core tensor size (I=10^4, nnz=5*10^4)",
           "core", labels, tensors, cores, log);
}

// Fit-vs-speed ablation at the largest completing core of Figure 1(c):
// multi-sweep exact DRI against sketched DRI (gaussian, 2 exact polish
// sweeps) from the same seed, reporting final fit next to simulated time.
// This is where sketching pays: at core 16^3 the exact CrossMerge shuffles
// 16^2-wide blocks while the sketched PairwiseMerge shuffles (16+4)-wide
// ones.
void PartFitVsSpeed(BenchJsonLog* log) {
  RandomTensorSpec spec;
  spec.dims = {10000, 10000, 10000};
  spec.nnz = 50000;
  spec.seed = 3;
  SparseTensor x = GenerateRandomTensor(spec).value();
  const int64_t core = 16;
  const int sweeps = 4;

  PrintHeader(StrFormat("Figure 1(d): Tucker fit vs speed, core %" PRId64
                        "^3, %d sweeps",
                        core, sweeps),
              {"method", "fit", "sim-time"});
  struct Ablation {
    const char* name;
    const char* sketch;  // nullptr = exact driver
  };
  for (const Ablation& a :
       {Ablation{"HaTen2-DRI", nullptr},
        Ablation{"HaTen2-DRI-sk", "gaussian"}}) {
    ClusterConfig config = PaperCluster(kShuffleBudget);
    Haten2Options options;
    options.max_iterations = sweeps;
    options.tolerance = 0.0;
    options.variant = Variant::kDri;
    options.seed = 42;
    double fit = 0.0;
    Measurement result;
    if (a.sketch == nullptr) {
      Engine engine(config);
      result = MeasureMr(&engine, [&] {
        Result<TuckerModel> model =
            Haten2TuckerAls(&engine, x, {core, core, core}, options);
        if (model.ok()) fit = model->fit;
        return model.status();
      });
    } else {
      config.tucker_sketch = a.sketch;
      config.exact_polish_sweeps = 2;
      Engine engine(config);
      result = MeasureMr(&engine, [&] {
        Result<TuckerModel> model =
            Haten2SketchedTuckerAls(&engine, x, {core, core, core}, options);
        if (model.ok()) fit = model->fit;
        return model.status();
      });
    }
    log->Add("fit_vs_speed", StrFormat("core=%" PRId64 "^3", core), a.name,
             result);
    PrintRow({a.name, StrFormat("%.4f", fit), result.Cell()});
  }
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - Figure 1: Tucker data scalability\n");
  std::printf("(HaTen2 columns: simulated 40-machine times; Toolbox "
              "column: real single-machine wall time. o.o.m. = exceeded "
              "memory budget; skip(oom) = method already failed at a "
              "smaller scale)\n");
  haten2::bench::BenchJsonLog log("fig1_tucker_scalability");
  haten2::bench::PartDims(&log);
  haten2::bench::PartDensity(&log);
  haten2::bench::PartCore(&log);
  haten2::bench::PartFitVsSpeed(&log);
  log.Write();
  return 0;
}
