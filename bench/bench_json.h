#ifndef HATEN2_BENCH_BENCH_JSON_H_
#define HATEN2_BENCH_BENCH_JSON_H_

// Machine-readable export for the paper-reproduction harnesses: each
// harness collects its measured cells into a BenchJsonLog and writes
// BENCH_<name>.json next to the human-readable table. The "haten2-bench-v1"
// schema (documented in docs/INTERNALS.md) shares its per-job shape with
// the CLI's "haten2-stats-v9" export, so one reader covers both.
//
// Output directory: $HATEN2_BENCH_JSON_DIR when set, else the working
// directory.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "mapreduce/stats_json.h"
#include "util/json_writer.h"
#include "util/result.h"

namespace haten2 {
namespace bench {

class BenchJsonLog {
 public:
  explicit BenchJsonLog(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Records one measured cell. `sweep` names the parameter being swept
  /// (e.g. "dims"), `param` the point (e.g. "I=1000"), `method` the
  /// competitor (e.g. "HaTen2-DRI"). Cells skipped after an earlier o.o.m.
  /// are not recorded — absence from the log means "not run".
  void Add(const std::string& sweep, const std::string& param,
           const std::string& method, const Measurement& m) {
    cells_.push_back(Cell{sweep, param, method, m});
  }

  /// Serializes every recorded cell ("haten2-bench-v1").
  std::string ToJson() const {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema");
    w.Value("haten2-bench-v1");
    w.Key("bench");
    w.Value(bench_name_);
    w.Key("cells");
    w.BeginArray();
    for (const Cell& cell : cells_) {
      w.BeginObject();
      w.Key("sweep");
      w.Value(cell.sweep);
      w.Key("param");
      w.Value(cell.param);
      w.Key("method");
      w.Value(cell.method);
      w.Key("oom");
      w.Value(cell.m.oom);
      w.Key("wall_seconds");
      w.Value(cell.m.wall_seconds);
      w.Key("simulated_seconds");
      w.Value(cell.m.simulated_seconds);
      w.Key("jobs");
      w.Value(cell.m.jobs);
      w.Key("max_intermediate_records");
      w.Value(cell.m.max_intermediate_records);
      w.Key("max_intermediate_bytes");
      w.Value(cell.m.max_intermediate_bytes);
      w.Key("total_intermediate_records");
      w.Value(cell.m.total_intermediate_records);
      w.Key("total_spilled_raw_bytes");
      w.Value(cell.m.total_spilled_raw_bytes);
      w.Key("total_spilled_compressed_bytes");
      w.Value(cell.m.total_spilled_compressed_bytes);
      w.Key("wire_bytes");
      w.Value(cell.m.wire_bytes);
      w.Key("pipeline");
      PipelineStatsToJson(cell.m.pipeline, /*cost=*/nullptr, &w);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    return w.str();
  }

  /// Writes BENCH_<name>.json and reports the path on stdout. Returns the
  /// path written, or "" on failure (the failure is printed, not fatal:
  /// the human-readable tables already went to stdout).
  std::string Write() const {
    const char* dir = std::getenv("HATEN2_BENCH_JSON_DIR");
    std::string path = (dir != nullptr && dir[0] != '\0')
                           ? std::string(dir) + "/BENCH_" + bench_name_ +
                                 ".json"
                           : "BENCH_" + bench_name_ + ".json";
    Status status = WriteTextFile(path, ToJson());
    if (!status.ok()) {
      std::fprintf(stderr, "bench json: %s\n", status.ToString().c_str());
      return "";
    }
    std::printf("wrote %s (%zu cells)\n", path.c_str(), cells_.size());
    return path;
  }

 private:
  struct Cell {
    std::string sweep;
    std::string param;
    std::string method;
    Measurement m;
  };

  std::string bench_name_;
  std::vector<Cell> cells_;
};

}  // namespace bench
}  // namespace haten2

#endif  // HATEN2_BENCH_BENCH_JSON_H_
