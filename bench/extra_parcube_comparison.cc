// Extra (beyond the paper's tables): exact vs approximate — HaTen2-DRI
// PARAFAC against ParCube [17], the sampling-based method the paper cites
// as related work. ParCube's sub-tensor decompositions are embarrassingly
// parallel but approximate; HaTen2 is exact but pays shuffle costs. The
// harness sweeps ParCube's sample fraction and reports the accuracy/time
// frontier on a tensor with planted structure.

#include <cinttypes>

#include "baseline/parcube.h"
#include "bench_util.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace bench {
namespace {

void Run() {
  LowRankTensorSpec spec;
  spec.dims = {600, 500, 400};
  spec.rank = 4;
  spec.block_size = 25;
  spec.nnz_per_component = 6000;
  spec.noise_nnz = 3000;
  spec.seed = 14;
  PlantedTensor planted = GenerateLowRankTensor(spec).value();
  const SparseTensor& x = planted.tensor;
  std::printf("tensor: %s, %lld planted components\n\n",
              x.DebugString().c_str(), (long long)spec.rank);

  PrintHeader("exact vs sampled PARAFAC (rank 4)",
              {"method", "fit", "wall"});

  {
    Engine engine(PaperCluster(/*unlimited*/ 0));
    Haten2Options options;
    options.variant = Variant::kDri;
    options.max_iterations = 60;
    options.nonnegative = true;
    WallTimer timer;
    Result<KruskalModel> model =
        Haten2ParafacAls(&engine, x, spec.rank, options);
    HATEN2_CHECK(model.ok()) << model.status().ToString();
    PrintRow({"HaTen2-DRI", StrFormat("%.4f", model->fit),
              HumanSeconds(timer.ElapsedSeconds())});
  }

  for (double fraction : {0.25, 0.5, 0.75}) {
    ParCubeOptions options;
    options.sample_fraction = fraction;
    options.num_samples = 5;
    options.max_iterations = 60;
    options.seed = 3;
    WallTimer timer;
    Result<KruskalModel> model = ParCubeParafac(x, spec.rank, options);
    HATEN2_CHECK(model.ok()) << model.status().ToString();
    PrintRow({StrFormat("ParCube s=%.2f", fraction),
              StrFormat("%.4f", model->fit),
              HumanSeconds(timer.ElapsedSeconds())});
  }
  std::printf("\nexpected shape: ParCube lands within ~80-95%% of the exact "
              "method's fit at a fraction of the single-host work; the "
              "fit is noisy in the sample fraction (merge noise trades "
              "against per-sample problem difficulty), which is exactly "
              "the approximation the ParCube paper accepts for its "
              "embarrassing parallelism. Wall times are not directly "
              "comparable: the exact method's includes the in-process "
              "MapReduce machinery.\n");
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - extra: exact (HaTen2) vs sampled "
              "(ParCube) PARAFAC\n");
  haten2::bench::Run();
  return 0;
}
