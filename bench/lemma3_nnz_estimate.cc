// Validates Lemma 3 (Appendix A) empirically: for a sparse tensor X and a
// fully dense matrix B with Q columns, nnz(X ×₂ B) ≈ nnz(X)·Q — the
// estimate that justifies replacing nnz(X ×₂ B) with nnz(X)·Q in Table III
// and motivates the DRN redesign. The harness sweeps density and reports
// predicted vs measured, including the breakdown at high density where the
// first-order Taylor approximation stops holding (nnz saturates at I·Q·K).

#include <cinttypes>

#include "bench_json.h"
#include "bench_util.h"
#include "tensor/tensor_ops.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace bench {
namespace {

void Run(BenchJsonLog* log) {
  const int64_t dim = 60;
  const int64_t q = 5;
  Rng rng(31);
  DenseMatrix b = DenseMatrix::RandomUniform(q, dim, &rng);  // fully dense

  PrintHeader("Lemma 3: nnz(X x2 B) vs the nnz(X)*Q estimate (I=J=K=60, "
              "Q=5)",
              {"density", "nnz(X)", "predicted", "measured", "ratio",
               "cap I*Q*K"});
  for (double density : {1e-4, 1e-3, 1e-2, 5e-2, 2e-1}) {
    SparseTensor x = GenerateRandomCubicTensor(dim, density, 32).value();
    if (x.nnz() == 0) continue;
    WallTimer timer;
    Result<SparseTensor> y = Ttm(x, b, 1);
    HATEN2_CHECK(y.ok()) << y.status().ToString();
    double predicted = static_cast<double>(x.nnz() * q);
    double measured = static_cast<double>(y->nnz());
    // The lemma is about intermediate-data size, so the JSON cells carry
    // the nnz counts in the intermediate-records fields (no engine jobs).
    Measurement cell;
    cell.wall_seconds = timer.ElapsedSeconds();
    cell.max_intermediate_records = y->nnz();
    cell.total_intermediate_records = static_cast<int64_t>(predicted);
    log->Add("density", StrFormat("%.0e", density), "ttm-measured-vs-nnzQ",
             cell);
    PrintRow({StrFormat("%.0e", density),
              StrFormat("%" PRId64, x.nnz()),
              StrFormat("%.0f", predicted), StrFormat("%.0f", measured),
              StrFormat("%.3f", measured / predicted),
              StrFormat("%" PRId64, dim * q * dim)});
  }
  std::printf("\nexpected shape: ratio ~1.0 while sparse (the regime of "
              "real tensors), dropping below 1 as fibers collide near "
              "density ~1/J and nnz saturates at I*Q*K.\n");
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - Lemma 3: intermediate-size "
              "estimate\n");
  haten2::bench::BenchJsonLog log("lemma3_nnz_estimate");
  haten2::bench::Run(&log);
  log.Write();
  return 0;
}
