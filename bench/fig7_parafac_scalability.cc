// Reproduces Figure 7 of the paper: data scalability of PARAFAC
// decomposition for (a) nonzeros & dimensionality, (b) density, and (c)
// rank, comparing the Tensor-Toolbox baseline with the four HaTen2
// variants. Same scaling substitutions as Figure 1 (see that harness and
// EXPERIMENTS.md).
//
// Expected shape (paper): Naive o.o.m.s beyond the smallest scale; DNN
// survives on memory (its per-job shuffle is only nnz + J) but pays 4R jobs
// of fixed overhead, making it the slowest survivor; DRI runs 2 jobs per
// MTTKRP and wins everywhere; the Toolbox wins only while the data fits in
// one machine.

#include <cinttypes>

#include <filesystem>

#include "bench_json.h"
#include "bench_util.h"
#include "workload/random_tensor.h"

namespace haten2 {
namespace bench {
namespace {

constexpr uint64_t kShuffleBudget = 256ull << 20;  // 256 MiB
constexpr uint64_t kToolboxBudget = 6ull << 20;   // 6 MiB

struct MethodState {
  std::string name;
  bool skipped = false;
};

void RunSweep(const std::string& title, const std::string& param_name,
              const std::vector<std::string>& param_labels,
              const std::vector<SparseTensor>& tensors,
              const std::vector<int64_t>& ranks, BenchJsonLog* log) {
  std::vector<MethodState> methods = {
      {"Toolbox"},    {"HaTen2-Naive"}, {"HaTen2-DNN"},
      {"HaTen2-DRN"}, {"HaTen2-DRI"},
  };
  PrintHeader(title, {param_name, "Toolbox", "Naive", "DNN", "DRN", "DRI"});
  for (size_t p = 0; p < tensors.size(); ++p) {
    const SparseTensor& x = tensors[p];
    const int64_t rank = ranks[p];
    std::vector<std::string> cells = {param_labels[p]};
    for (size_t m = 0; m < methods.size(); ++m) {
      if (methods[m].skipped) {
        cells.push_back("skip(oom)");
        continue;
      }
      Measurement result;
      if (m == 0) {
        MemoryTracker tracker(kToolboxBudget);
        BaselineOptions options;
        options.max_iterations = 1;
        options.memory = &tracker;
        result = MeasureBaseline(
            [&] { return ToolboxParafacAls(x, rank, options).status(); });
      } else {
        Engine engine(PaperCluster(kShuffleBudget));
        Haten2Options options;
        options.max_iterations = 1;
        options.compute_fit = false;  // time the decomposition jobs alone
        options.variant = static_cast<Variant>(m - 1);
        result = MeasureMr(&engine, [&] {
          return Haten2ParafacAls(&engine, x, rank, options).status();
        });
      }
      if (result.oom) methods[m].skipped = true;
      log->Add(param_name, param_labels[p], methods[m].name, result);
      cells.push_back(result.Cell());
    }
    PrintRow(cells);
  }
}

void PartDims(BenchJsonLog* log) {
  std::vector<int64_t> dims = {100, 1000, 10000, 30000};
  std::vector<std::string> labels;
  std::vector<SparseTensor> tensors;
  std::vector<int64_t> ranks;
  for (int64_t dim : dims) {
    RandomTensorSpec spec;
    spec.dims = {dim, dim, dim};
    spec.nnz = dim * 10;
    spec.seed = 2000 + static_cast<uint64_t>(dim);
    tensors.push_back(GenerateRandomTensor(spec).value());
    labels.push_back(StrFormat("I=%" PRId64, dim));
    ranks.push_back(5);
  }
  RunSweep("Figure 7(a): PARAFAC, nonzeros & dimensionality (nnz = 10*I, "
           "rank 5)",
           "dims", labels, tensors, ranks, log);
}

void PartDensity(BenchJsonLog* log) {
  const int64_t dim = 600;
  std::vector<double> densities = {1e-6, 1e-5, 1e-4, 1e-3};
  std::vector<std::string> labels;
  std::vector<SparseTensor> tensors;
  std::vector<int64_t> ranks;
  for (double d : densities) {
    tensors.push_back(GenerateRandomCubicTensor(dim, d, 78).value());
    labels.push_back(StrFormat("%.0e", d));
    ranks.push_back(5);
  }
  RunSweep("Figure 7(b): PARAFAC, density (I=J=K=600, rank 5)", "density",
           labels, tensors, ranks, log);
}

void PartRank(BenchJsonLog* log) {
  RandomTensorSpec spec;
  spec.dims = {10000, 10000, 10000};
  spec.nnz = 50000;
  spec.seed = 4;
  SparseTensor x = GenerateRandomTensor(spec).value();
  std::vector<int64_t> ranks = {4, 8, 16, 32};
  std::vector<std::string> labels;
  std::vector<SparseTensor> tensors;
  for (int64_t r : ranks) {
    labels.push_back(StrFormat("R=%" PRId64, r));
    tensors.push_back(x);
  }
  RunSweep("Figure 7(c): PARAFAC, rank (I=10^4, nnz=5*10^4)", "rank", labels,
           tensors, ranks, log);
}

// Fig. 7-style I/O ablation for the shuffle-heavy variants: with spilling
// forced on, how much simulated disk time does block-compressing the spill
// runs (delta+varint keys) buy DNN and DRN? Compressed bytes feed the
// CostModel's per-task disk term, so the win shows up directly in the
// simulated column.
void PartSpillCompression(BenchJsonLog* log) {
  RandomTensorSpec spec;
  spec.dims = {3000, 3000, 3000};
  spec.nnz = 30000;
  spec.seed = 2077;
  SparseTensor x = GenerateRandomTensor(spec).value();

  const std::string spill_dir =
      (std::filesystem::temp_directory_path() / "haten2_fig7_spills")
          .string();
  std::filesystem::create_directories(spill_dir);

  PrintHeader("Figure 7(d): spill compression (I=3000, nnz=3*10^4, rank 5; "
              "4 map tasks / 4 partitions, spill threshold 256)",
              {"variant", "none", "delta_varint", "spill ratio"});
  for (Variant variant : {Variant::kDnn, Variant::kDrn}) {
    std::vector<std::string> cells = {
        variant == Variant::kDnn ? "HaTen2-DNN" : "HaTen2-DRN"};
    uint64_t raw = 0;
    uint64_t compressed = 0;
    for (SpillCompression codec :
         {SpillCompression::kNone, SpillCompression::kDeltaVarint}) {
      ClusterConfig config = PaperCluster(kShuffleBudget);
      config.spill_directory = spill_dir;
      // The default 160x160 task/partition grid dilutes each buffer below
      // any useful threshold; pin a coarse split so the sort-spill path
      // actually engages and the codec has runs to compress.
      config.num_map_tasks = 4;
      config.num_reduce_tasks = 4;
      config.spill_threshold_records = 256;
      config.spill_compression = codec;
      Engine engine(config);
      Haten2Options options;
      options.max_iterations = 1;
      options.compute_fit = false;
      options.variant = variant;
      Measurement result = MeasureMr(&engine, [&] {
        return Haten2ParafacAls(&engine, x, 5, options).status();
      });
      if (codec == SpillCompression::kNone) {
        raw = result.total_spilled_raw_bytes;
      } else {
        compressed = result.total_spilled_compressed_bytes;
      }
      log->Add("spill_compression",
               std::string(SpillCompressionName(codec)),
               variant == Variant::kDnn ? "HaTen2-DNN" : "HaTen2-DRN",
               result);
      cells.push_back(result.Cell());
    }
    cells.push_back(compressed > 0
                        ? StrFormat("%.2fx", static_cast<double>(raw) /
                                                 static_cast<double>(
                                                     compressed))
                        : "no spills");
    PrintRow(cells);
  }
}

// Figure 7(e) extension: IMHP dataflow vs the in-core contraction strategy
// on an in-memory-sized tensor. Same PARAFAC-DRI decomposition, same input;
// the only change is ClusterConfig::contraction. The wall column is real
// single-host seconds (not simulated), so the ratio is the honest speedup
// of skipping the shuffle when the layout fits in memory; the acceptance
// target is >= 2x.
void PartContractionAblation(BenchJsonLog* log) {
  RandomTensorSpec spec;
  spec.dims = {3000, 3000, 3000};
  spec.nnz = 100000;
  spec.seed = 2088;
  SparseTensor x = GenerateRandomTensor(spec).value();

  PrintHeader("Figure 7(e): contraction strategy ablation (I=3000, "
              "nnz=10^5, rank 10, PARAFAC-DRI, 1 iteration)",
              {"strategy", "wall", "speedup"});
  double dataflow_wall = 0.0;
  for (const char* strategy : {"dataflow", "incore"}) {
    ClusterConfig config = PaperCluster(kShuffleBudget);
    config.contraction = strategy;
    Engine engine(config);
    Haten2Options options;
    options.max_iterations = 1;
    options.compute_fit = false;
    options.variant = Variant::kDri;
    Measurement result = MeasureMr(&engine, [&] {
      return Haten2ParafacAls(&engine, x, 10, options).status();
    });
    log->Add("contraction", strategy, "HaTen2-DRI", result);
    std::vector<std::string> cells = {strategy,
                                      StrFormat("%.3fs", result.wall_seconds)};
    if (std::string(strategy) == "dataflow") {
      dataflow_wall = result.wall_seconds;
      cells.push_back("1.00x");
    } else {
      cells.push_back(result.wall_seconds > 0.0
                          ? StrFormat("%.2fx",
                                      dataflow_wall / result.wall_seconds)
                          : "inf");
    }
    PrintRow(cells);
  }
}

}  // namespace
}  // namespace bench
}  // namespace haten2

int main() {
  std::printf("HaTen2 reproduction - Figure 7: PARAFAC data scalability\n");
  std::printf("(HaTen2 columns: simulated 40-machine times; Toolbox "
              "column: real single-machine wall time. o.o.m. = exceeded "
              "memory budget; skip(oom) = method already failed at a "
              "smaller scale)\n");
  haten2::bench::BenchJsonLog log("fig7_parafac_scalability");
  haten2::bench::PartDims(&log);
  haten2::bench::PartDensity(&log);
  haten2::bench::PartRank(&log);
  haten2::bench::PartSpillCompression(&log);
  haten2::bench::PartContractionAblation(&log);
  log.Write();
  return 0;
}
