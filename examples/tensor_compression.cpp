// Tensor compression with Tucker — the decomposition's second classic use
// (Section II-B2: "Tucker is more appropriate for tensor compression").
// Builds a tensor with genuine low multilinear rank plus noise, compresses
// it to a small core + factors, and reports the storage ratio and
// reconstruction quality; also shows writing/reading the tensor text format.
//
//   ./tensor_compression

#include <cstdio>

#include "core/tucker.h"
#include "mapreduce/engine.h"
#include "tensor/tensor_io.h"
#include "util/string_util.h"
#include "tensor/tensor_ops.h"
#include "workload/random_tensor.h"

int main() {
  using namespace haten2;

  // 1. A tensor that is genuinely compressible: rank-(3,3,3) structure.
  Rng rng(7);
  Result<DenseTensor> core_truth = DenseTensor::Create({3, 3, 3});
  if (!core_truth.ok()) return 1;
  for (double& v : core_truth->data()) v = rng.Uniform(0.5, 2.0);
  DenseMatrix a = DenseMatrix::RandomUniform(60, 3, &rng);
  DenseMatrix b = DenseMatrix::RandomUniform(50, 3, &rng);
  DenseMatrix c = DenseMatrix::RandomUniform(40, 3, &rng);
  Result<DenseTensor> dense = ReconstructTucker(*core_truth, {&a, &b, &c});
  if (!dense.ok()) return 1;
  SparseTensor x = dense->ToSparse();
  std::printf("input: %s (%s raw COO)\n", x.DebugString().c_str(),
              HumanBytes(x.ApproxBytes()).c_str());

  // 2. Round-trip through the text format (the on-disk representation the
  //    distributed jobs consume).
  const char* path = "/tmp/haten2_compression_demo.tns";
  if (Status s = WriteTensorText(x, path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  Result<SparseTensor> loaded = ReadTensorText(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("round-tripped through %s: identical = %s\n", path,
              loaded->IdenticalTo(x) ? "yes" : "NO");

  // 3. Compress with HaTen2-Tucker at the true multilinear rank.
  ClusterConfig config;
  config.num_threads = 2;
  Engine engine(config);
  Haten2Options options;
  options.max_iterations = 25;
  options.tolerance = 1e-10;
  Result<TuckerModel> model =
      Haten2TuckerAls(&engine, *loaded, {3, 3, 3}, options);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  // 4. Storage accounting: core + factors vs raw COO.
  uint64_t compressed_bytes =
      static_cast<uint64_t>(model->core.size()) * sizeof(double);
  for (const DenseMatrix& f : model->factors) {
    compressed_bytes += static_cast<uint64_t>(f.size()) * sizeof(double);
  }
  std::printf("\ncompressed model: core 3x3x3 + factors (%s)\n",
              HumanBytes(compressed_bytes).c_str());
  std::printf("compression ratio: %.1fx\n",
              static_cast<double>(x.ApproxBytes()) /
                  static_cast<double>(compressed_bytes));
  std::printf("fit: %.6f (1.0 = lossless for exactly low-rank data)\n",
              model->fit);

  // 5. Verify by reconstructing and measuring the max entrywise error.
  Result<DenseTensor> recon =
      ReconstructTucker(model->core, model->FactorPtrs());
  if (!recon.ok()) return 1;
  std::printf("max entrywise reconstruction error: %.2e\n",
              recon->MaxAbsDiff(*dense));
  std::remove(path);
  return model->fit > 0.999 ? 0 : 1;
}
