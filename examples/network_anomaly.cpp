// Network-anomaly detection — the paper's motivating example: a 4-way
// tensor of (source-ip, target-ip, port, timestamp) counts, decomposed with
// HaTen2-PARAFAC. Normal traffic concentrates on a few service ports;
// a port scan shows up as a component whose port-mode loading is spread
// across many ports while its source loading concentrates on one address.
//
//   ./network_anomaly

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/parafac.h"
#include "mapreduce/engine.h"
#include "workload/network_logs.h"

namespace {

// Shannon entropy of a nonnegative loading vector (normalized), in bits.
// High entropy along ports = activity spread over many ports = scan-like.
double LoadingEntropy(const haten2::DenseMatrix& factor, int64_t component) {
  double sum = 0.0;
  for (int64_t i = 0; i < factor.rows(); ++i) {
    sum += std::fabs(factor(i, component));
  }
  if (sum == 0.0) return 0.0;
  double entropy = 0.0;
  for (int64_t i = 0; i < factor.rows(); ++i) {
    double p = std::fabs(factor(i, component)) / sum;
    if (p > 1e-12) entropy -= p * std::log2(p);
  }
  return entropy;
}

int64_t ArgMaxRow(const haten2::DenseMatrix& factor, int64_t component) {
  int64_t best = 0;
  for (int64_t i = 1; i < factor.rows(); ++i) {
    if (std::fabs(factor(i, component)) >
        std::fabs(factor(best, component))) {
      best = i;
    }
  }
  return best;
}

}  // namespace

int main() {
  using namespace haten2;

  // 1. Synthesize intrusion logs: 3 normal services plus one planted port
  //    scan (one source probing 60 consecutive ports of one target in a
  //    2-step time window).
  NetworkLogSpec spec;
  spec.seed = 1234;
  spec.scan_intensity = 4.0;  // repeated SYN probes per port
  Result<NetworkLogs> logs = GenerateNetworkLogs(spec);
  if (!logs.ok()) {
    std::fprintf(stderr, "%s\n", logs.status().ToString().c_str());
    return 1;
  }
  std::printf("network log tensor: %s\n", logs->tensor.DebugString().c_str());
  std::printf("planted scan: source %lld -> target %lld, %zu ports, %zu "
              "time steps\n\n",
              (long long)logs->scanner_source, (long long)logs->scan_target,
              logs->scan_ports.size(), logs->scan_times.size());

  // 2. PARAFAC with one component per service plus one for the anomaly.
  ClusterConfig config;
  config.num_threads = 2;
  Engine engine(config);
  Haten2Options options;
  options.variant = Variant::kDri;
  options.max_iterations = 30;
  options.nonnegative = true;  // loadings read as activity profiles
  const int64_t rank = spec.num_services + 2;
  Result<KruskalModel> model =
      Haten2ParafacAls(&engine, logs->tensor, rank, options);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("PARAFAC rank %lld (nonnegative), fit %.3f\n\n",
              (long long)rank, model->fit);

  // 3. Rank components by port-mode entropy; the scan spreads across ~60
  //    ports while services use 1-2.
  std::vector<std::pair<double, int64_t>> by_entropy;
  for (int64_t r = 0; r < rank; ++r) {
    by_entropy.emplace_back(LoadingEntropy(model->factors[2], r), r);
  }
  std::sort(by_entropy.rbegin(), by_entropy.rend());

  std::printf("%-10s %-12s %-10s %-10s %s\n", "component", "port-entropy",
              "top-source", "top-target", "verdict");
  for (auto [entropy, r] : by_entropy) {
    int64_t src = ArgMaxRow(model->factors[0], r);
    int64_t dst = ArgMaxRow(model->factors[1], r);
    bool is_scan = (entropy == by_entropy.front().first);
    std::printf("%-10lld %-12.2f %-10lld %-10lld %s\n", (long long)r,
                entropy, (long long)src, (long long)dst,
                is_scan ? "<- SCAN-LIKE" : "service traffic");
  }

  // 4. Check against ground truth.
  int64_t flagged = by_entropy.front().second;
  int64_t detected_src = ArgMaxRow(model->factors[0], flagged);
  int64_t detected_dst = ArgMaxRow(model->factors[1], flagged);
  bool hit = detected_src == logs->scanner_source &&
             detected_dst == logs->scan_target;
  std::printf("\ndetected scanner: source %lld -> target %lld (%s)\n",
              (long long)detected_src, (long long)detected_dst,
              hit ? "matches the planted scan" : "MISMATCH");
  return hit ? 0 : 1;
}
