// Quickstart: decompose a sparse tensor with HaTen2.
//
// Builds a small random 3-way tensor, runs both decompositions through the
// MapReduce engine with the recommended HaTen2-DRI variant, and prints the
// fits plus the engine's job log — the 30-second tour of the public API.
//
//   ./quickstart

#include <cstdio>

#include "core/parafac.h"
#include "core/tucker.h"
#include "mapreduce/engine.h"
#include "tensor/tensor_io.h"
#include "workload/random_tensor.h"

int main() {
  using namespace haten2;

  // 1. Build (or load) a sparse tensor. Tensors are COO: append
  //    (i, j, k, value) records, then Canonicalize(). Here we generate a
  //    random one; ReadTensorText() loads the same format from disk.
  RandomTensorSpec spec;
  spec.dims = {500, 400, 300};
  spec.nnz = 20000;
  spec.seed = 42;
  Result<SparseTensor> tensor = GenerateRandomTensor(spec);
  if (!tensor.ok()) {
    std::fprintf(stderr, "generate: %s\n", tensor.status().ToString().c_str());
    return 1;
  }
  std::printf("input tensor: %s\n", tensor->DebugString().c_str());

  // 2. Configure the engine. ClusterConfig controls the simulated cluster
  //    (machines, per-job overhead, shuffle-memory budget) and the real
  //    execution thread count.
  ClusterConfig config;
  config.num_machines = 40;
  config.num_threads = 2;
  Engine engine(config);

  // 3. PARAFAC: factorize into rank-R components.
  Haten2Options options;
  options.variant = Variant::kDri;  // the recommended method ("HaTen2")
  options.max_iterations = 10;
  Result<KruskalModel> parafac = Haten2ParafacAls(&engine, *tensor, 5,
                                                  options);
  if (!parafac.ok()) {
    std::fprintf(stderr, "parafac: %s\n",
                 parafac.status().ToString().c_str());
    return 1;
  }
  std::printf("\nPARAFAC rank 5: fit %.4f after %d iterations\n",
              parafac->fit, parafac->iterations);
  std::printf("lambda:");
  for (double l : parafac->lambda) std::printf(" %.3f", l);
  std::printf("\nfactor shapes: A %lldx%lld, B %lldx%lld, C %lldx%lld\n",
              (long long)parafac->factors[0].rows(),
              (long long)parafac->factors[0].cols(),
              (long long)parafac->factors[1].rows(),
              (long long)parafac->factors[1].cols(),
              (long long)parafac->factors[2].rows(),
              (long long)parafac->factors[2].cols());

  // 4. Tucker: core tensor + orthonormal factors.
  engine.ClearPipeline();
  Result<TuckerModel> tucker =
      Haten2TuckerAls(&engine, *tensor, {4, 4, 4}, options);
  if (!tucker.ok()) {
    std::fprintf(stderr, "tucker: %s\n", tucker.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTucker core 4x4x4: fit %.4f after %d iterations, "
              "||G|| = %.3f\n",
              tucker->fit, tucker->iterations,
              tucker->core.FrobeniusNorm());

  // 5. Inspect what the engine did: every MapReduce job with its
  //    intermediate-data counters.
  std::printf("\nengine job log (Tucker run):\n%s",
              engine.pipeline().ToString().c_str());
  return 0;
}
