// Checkpoint and resume a long decomposition — the operational pattern for
// multi-hour runs on big tensors: periodically save the model, and on
// restart warm-start from the latest checkpoint. Because ALS state is fully
// captured by the factors, resuming continues the exact iterate sequence.
//
//   ./checkpoint_resume

#include <cmath>
#include <cstdio>
#include <string>

#include "core/parafac.h"
#include "mapreduce/engine.h"
#include "tensor/model_io.h"
#include "workload/random_tensor.h"

int main() {
  using namespace haten2;

  // A tensor with planted low-rank structure so the fit climbs visibly.
  LowRankTensorSpec spec;
  spec.dims = {300, 250, 200};
  spec.rank = 4;
  spec.block_size = 15;
  spec.nnz_per_component = 2000;
  spec.noise_nnz = 1000;
  spec.seed = 11;
  Result<PlantedTensor> planted = GenerateLowRankTensor(spec);
  if (!planted.ok()) {
    std::fprintf(stderr, "%s\n", planted.status().ToString().c_str());
    return 1;
  }
  std::printf("tensor: %s\n\n", planted->tensor.DebugString().c_str());

  ClusterConfig config;
  config.num_threads = 2;
  Engine engine(config);
  const char* checkpoint = "/tmp/haten2_checkpoint";

  // Phase 1: run 5 iterations, then checkpoint (as if the job were about to
  // be preempted).
  Haten2Options options;
  options.max_iterations = 5;
  options.tolerance = 0.0;
  Result<KruskalModel> phase1 =
      Haten2ParafacAls(&engine, planted->tensor, 4, options);
  if (!phase1.ok()) {
    std::fprintf(stderr, "%s\n", phase1.status().ToString().c_str());
    return 1;
  }
  std::printf("phase 1: fit %.4f after %d iterations\n", phase1->fit,
              phase1->iterations);
  if (Status s = SaveKruskalModel(*phase1, checkpoint); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("checkpointed to %s.*\n\n", checkpoint);

  // Phase 2 ("after the restart"): load the checkpoint and continue.
  Result<KruskalModel> loaded = LoadKruskalModel(checkpoint, 3);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Haten2Options resume = options;
  resume.max_iterations = 10;
  resume.initial_kruskal = &loaded.value();
  Result<KruskalModel> phase2 =
      Haten2ParafacAls(&engine, planted->tensor, 4, resume);
  if (!phase2.ok()) {
    std::fprintf(stderr, "%s\n", phase2.status().ToString().c_str());
    return 1;
  }
  std::printf("phase 2 (resumed): fit %.4f after %d more iterations\n",
              phase2->fit, phase2->iterations);

  // Sanity: a straight 15-iteration run lands on the same trajectory.
  Haten2Options straight = options;
  straight.max_iterations = 15;
  Result<KruskalModel> reference =
      Haten2ParafacAls(&engine, planted->tensor, 4, straight);
  if (!reference.ok()) return 1;
  std::printf("straight 15-iteration run: fit %.4f (matches resume: %s)\n",
              reference->fit,
              std::fabs(reference->fit - phase2->fit) < 1e-9 ? "yes" : "NO");

  for (int m = 0; m < 3; ++m) {
    std::remove((std::string(checkpoint) + ".mode" + std::to_string(m) +
                 ".txt")
                    .c_str());
  }
  std::remove((std::string(checkpoint) + ".lambda.txt").c_str());
  return std::fabs(reference->fit - phase2->fit) < 1e-9 ? 0 : 1;
}
