// Concept discovery in a knowledge base — the paper's Section IV-C
// workflow end to end: generate a Freebase-music-style (subject, object,
// relation) tensor, apply the paper's preprocessing (drop too-scarce /
// too-frequent relations, reweight by 1 + log(alpha / links(z))), run both
// decompositions, and print the discovered concepts.
//
//   ./knowledge_discovery

#include <cstdio>

#include "core/link_prediction.h"
#include "core/parafac.h"
#include "core/tucker.h"
#include "mapreduce/engine.h"
#include "workload/knowledge_base.h"

int main() {
  using namespace haten2;

  // 1. Knowledge base with 4 planted concepts; concepts 0 and 1 share their
  //    object group (the overlap Tucker should expose).
  KnowledgeBaseSpec spec;
  spec.num_subjects = 1200;
  spec.num_objects = 1200;
  spec.num_relations = 36;
  spec.num_concepts = 4;
  spec.subjects_per_concept = 20;
  spec.objects_per_concept = 20;
  spec.relations_per_concept = 3;
  spec.facts_per_concept = 1500;
  spec.noise_facts = 1000;
  spec.seed = 99;
  Result<KnowledgeBase> kb = GenerateKnowledgeBase(spec);
  if (!kb.ok()) {
    std::fprintf(stderr, "%s\n", kb.status().ToString().c_str());
    return 1;
  }
  std::printf("raw knowledge tensor: %s\n", kb->tensor.DebugString().c_str());

  // 2. The paper's preprocessing.
  PreprocessOptions prep;
  prep.min_relation_count = 2;
  prep.max_relation_fraction = 0.5;
  Result<SparseTensor> cleaned = PreprocessKnowledgeTensor(kb->tensor, prep);
  if (!cleaned.ok()) {
    std::fprintf(stderr, "%s\n", cleaned.status().ToString().c_str());
    return 1;
  }
  std::printf("after preprocessing:  %s\n\n", cleaned->DebugString().c_str());

  ClusterConfig config;
  config.num_threads = 2;
  Engine engine(config);
  Haten2Options options;
  options.max_iterations = 20;
  options.nonnegative = true;
  options.seed = 3;

  // 3. PARAFAC concepts: each component couples one group per mode.
  Result<KruskalModel> parafac =
      Haten2ParafacAls(&engine, *cleaned, spec.num_concepts, options);
  if (!parafac.ok()) {
    std::fprintf(stderr, "%s\n", parafac.status().ToString().c_str());
    return 1;
  }
  std::printf("--- PARAFAC concepts (rank %d, fit %.3f) ---\n",
              spec.num_concepts, parafac->fit);
  std::vector<std::vector<int64_t>> subjects =
      TopKPerColumn(parafac->factors[0], 3);
  std::vector<std::vector<int64_t>> objects =
      TopKPerColumn(parafac->factors[1], 3);
  std::vector<std::vector<int64_t>> relations =
      TopKPerColumn(parafac->factors[2], 2);
  for (int c = 0; c < spec.num_concepts; ++c) {
    std::printf("concept %d: subjects {%s, %s, %s}\n", c,
                kb->SubjectName(subjects[c][0]).c_str(),
                kb->SubjectName(subjects[c][1]).c_str(),
                kb->SubjectName(subjects[c][2]).c_str());
    std::printf("           objects  {%s, %s, %s}\n",
                kb->ObjectName(objects[c][0]).c_str(),
                kb->ObjectName(objects[c][1]).c_str(),
                kb->ObjectName(objects[c][2]).c_str());
    std::printf("           relations {%s, %s}\n",
                kb->RelationName(relations[c][0]).c_str(),
                kb->RelationName(relations[c][1]).c_str());
  }

  // 4. How much of the planted structure was recovered?
  std::vector<std::vector<int64_t>> planted_subjects;
  for (const auto& c : kb->concepts) planted_subjects.push_back(c.subjects);
  double recovery = RecoveryScore(TopKPerColumn(parafac->factors[0], 20),
                                  planted_subjects);
  std::printf("subject-group recovery: %.2f\n\n", recovery);

  // 5. Tucker: factor groups interact through the core tensor, exposing the
  //    shared object group.
  options.nonnegative = false;
  Result<TuckerModel> tucker = Haten2TuckerAls(
      &engine, *cleaned,
      {spec.num_concepts, spec.num_concepts, spec.num_concepts}, options);
  if (!tucker.ok()) {
    std::fprintf(stderr, "%s\n", tucker.status().ToString().c_str());
    return 1;
  }
  std::printf("--- Tucker concepts (core %dx%dx%d, fit %.3f) ---\n",
              spec.num_concepts, spec.num_concepts, spec.num_concepts,
              tucker->fit);
  std::vector<CoreEntry> top_core = TopCoreEntries(tucker->core, 4);
  for (size_t i = 0; i < top_core.size(); ++i) {
    std::printf("concept %zu = (S%lld, O%lld, R%lld), strength %.2f\n",
                i + 1, (long long)top_core[i].index[0] + 1,
                (long long)top_core[i].index[1] + 1,
                (long long)top_core[i].index[2] + 1, top_core[i].value);
  }
  std::printf("(an object group O* appearing in two concepts reflects the "
              "planted shared group)\n");

  // 6. Knowledge-base completion: the strongest *absent* cells under the
  //    PARAFAC model are predicted facts — triples the concepts imply but
  //    the data never asserted.
  Result<std::vector<PredictedEntry>> predicted =
      PredictTopEntries(*parafac, *cleaned, 5);
  if (!predicted.ok()) {
    std::fprintf(stderr, "%s\n", predicted.status().ToString().c_str());
    return 1;
  }
  std::printf("\n--- Predicted (unobserved) facts ---\n");
  for (const PredictedEntry& p : *predicted) {
    std::printf("  (%s, %s, %s)  score %.3f\n",
                kb->SubjectName(p.index[0]).c_str(),
                kb->ObjectName(p.index[1]).c_str(),
                kb->RelationName(p.index[2]).c_str(), p.score);
  }
  return 0;
}
